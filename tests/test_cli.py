"""Tests for the command-line interface."""

import pytest

from repro.cli import main


QUICK = ["--quick", "--users", "8", "--products", "20", "--session-rate", "0.05"]


def test_run_prints_summary(capsys):
    assert main(["run", "--scenario", "speed-kit"] + QUICK) == 0
    out = capsys.readouterr().out
    assert "Run summary" in out
    assert "speed-kit" in out
    assert "Hit ratio by content type" in out


@pytest.mark.parametrize("backend", ["inmemory", "sharded", "remote"])
def test_run_with_backend(capsys, backend):
    code = main(
        ["run", "--scenario", "speed-kit", "--backend", backend] + QUICK
    )
    assert code == 0
    assert "Run summary" in capsys.readouterr().out


def test_sweep_delta_with_backend(capsys):
    code = main(
        ["sweep-delta", "--deltas", "60", "--backend", "sharded"] + QUICK
    )
    assert code == 0
    assert "Δ sweep" in capsys.readouterr().out


def test_run_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["run", "--backend", "warp-drive"] + QUICK)


def test_run_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["run", "--scenario", "warp-drive"])


def test_compare_two_scenarios(capsys):
    code = main(
        ["compare", "--scenarios", "classic-cdn,speed-kit"] + QUICK
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Scenario comparison" in out
    assert "A/B" in out


def test_sweep_delta(capsys):
    assert main(["sweep-delta", "--deltas", "30,120"] + QUICK) == 0
    out = capsys.readouterr().out
    assert "Δ sweep" in out
    assert "30" in out and "120" in out


def test_sweep_segments(capsys):
    assert main(["sweep-segments", "--segments", "1,9"] + QUICK) == 0
    assert "Segment sweep" in capsys.readouterr().out


def test_gen_trace_and_replay(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    assert main(["gen-trace", "--out", str(trace_path)] + QUICK) == 0
    assert trace_path.exists()
    capsys.readouterr()
    code = main(
        [
            "run",
            "--scenario",
            "classic-cdn",
            "--replay",
            str(trace_path),
            "--users",
            "8",
            "--products",
            "20",
        ]
    )
    assert code == 0
    assert "classic-cdn" in capsys.readouterr().out


def test_run_trace_writes_span_dump(tmp_path, capsys):
    import json

    spans_path = tmp_path / "spans.jsonl"
    code = main(
        ["run", "--scenario", "speed-kit", "--trace", str(spans_path)]
        + QUICK
    )
    assert code == 0
    assert "Per-tier latency attribution" in capsys.readouterr().out
    lines = spans_path.read_text().splitlines()
    assert lines
    records = [json.loads(line) for line in lines]
    assert any(record["name"] == "pageview" for record in records)
    assert any(record["name"] == "origin" for record in records)


def test_run_writes_json_record(tmp_path, capsys):
    import json

    out = tmp_path / "result.json"
    code = main(
        ["run", "--scenario", "speed-kit", "--json", str(out)] + QUICK
    )
    assert code == 0
    record = json.loads(out.read_text())
    assert record["scenario"] == "speed-kit"
    assert record["delta_violations"] == 0
    assert "plt" in record and record["plt"]["count"] > 0


def test_report_to_file(tmp_path, capsys):
    out = tmp_path / "report.md"
    code = main(
        ["report", "--scenarios", "speed-kit", "--out", str(out)] + QUICK
    )
    assert code == 0
    content = out.read_text()
    assert content.startswith("# Speed Kit reproduction report")
    assert "speed-kit" in content


def test_report_to_stdout(capsys):
    assert main(["report", "--scenarios", "speed-kit"] + QUICK) == 0
    assert "## Scenario comparison" in capsys.readouterr().out


def test_erase_audits_all_logged_in_users(capsys):
    assert main(["erase", "--seed", "3"] + QUICK) == 0
    out = capsys.readouterr().out
    assert "Right-to-erasure audit" in out
    assert "COMPLIANT: all erasures completed with zero residuals" in out


def test_erase_writes_json_record(tmp_path, capsys):
    import json

    out = tmp_path / "erase.json"
    code = main(
        ["erase", "--seed", "3", "--json", str(out)] + QUICK
    )
    assert code == 0
    record = json.loads(out.read_text())
    assert record["erasures"] > 0
    assert record["erasure_removed"] >= record["erasures"]
    assert record["erasure_residuals"] == 0


def test_erase_single_user_and_sharded(capsys):
    import random

    from repro.workload import (
        CatalogConfig,
        UserPopulationConfig,
        WorkloadConfig,
        WorkloadGenerator,
        generate_catalog,
        generate_users,
    )

    # Find a logged-in user the quick seed-3 trace actually contains.
    catalog = generate_catalog(CatalogConfig(n_products=20), random.Random(3))
    users = generate_users(
        UserPopulationConfig(n_users=8), random.Random(4)
    )
    trace = WorkloadGenerator(
        catalog, users, WorkloadConfig(duration=900.0, session_rate=0.05)
    ).generate(random.Random(5))
    target = next(
        uid for uid in trace.users_seen() if users.by_id(uid).logged_in
    )
    code = main(
        ["erase", "--seed", "3", "--user", target, "--shards", "2"] + QUICK
    )
    assert code == 0
    assert "COMPLIANT" in capsys.readouterr().out


def test_erase_rejects_unknown_user():
    with pytest.raises(SystemExit):
        main(["erase", "--seed", "3", "--user", "nobody"] + QUICK)


def test_erase_with_write_behind_backend(capsys):
    code = main(
        ["erase", "--seed", "3", "--backend", "write-behind"] + QUICK
    )
    assert code == 0
    assert "COMPLIANT" in capsys.readouterr().out


def test_gdpr_mix_generates_requests(tmp_path, capsys):
    import json

    out = tmp_path / "mix.json"
    code = main(
        [
            "run",
            "--scenario",
            "speed-kit",
            "--gdpr-mix",
            "0.5",
            "--json",
            str(out),
        ]
        + QUICK
    )
    assert code == 0
    record = json.loads(out.read_text())
    assert record["erasures"] > 0
    assert record["accesses"] > 0
    assert record["erasure_residuals"] == 0


def test_gdpr_mix_rejects_bad_fraction():
    with pytest.raises(ValueError):
        main(["run", "--gdpr-mix", "1.5"] + QUICK)


def test_record_then_replay_is_flag_independent(tmp_path, capsys):
    """The lead bugfix: a v2 recording replays identically no matter
    what --seed/--users/--products the replay command line carries."""
    import json

    trace_path = tmp_path / "recorded.jsonl"
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    record_flags = [
        "--seed", "5", "--users", "12", "--products", "30",
        "--session-rate", "0.05", "--quick",
    ]
    assert main(
        [
            "run", "--scenario", "speed-kit", "--record", str(trace_path),
            "--json", str(first),
        ]
        + record_flags
    ) == 0
    capsys.readouterr()
    # Deliberately mismatched world flags: the embedded world must win.
    assert main(
        [
            "run", "--scenario", "speed-kit", "--replay", str(trace_path),
            "--seed", "99", "--users", "3", "--products", "7",
            "--json", str(second),
        ]
    ) == 0
    capsys.readouterr()
    a = json.loads(first.read_text())
    b = json.loads(second.read_text())
    a.pop("wall_seconds", None), b.pop("wall_seconds", None)
    assert a == b


def test_sharded_replay_is_flag_independent(tmp_path, capsys):
    """Sharded replay of a v2 recording is just as flag-independent as
    serial replay: two --shards 2 replays with wildly different
    --seed/--users/--products agree byte-for-byte, and both agree with
    the serial recording on every workload-exact invariant (hit-ratio
    parity between serial and sharded is out of scope — sharding
    changes cross-user cache warming by design)."""
    import json

    trace_path = tmp_path / "recorded.jsonl"
    serial_out = tmp_path / "serial.json"
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert main(
        [
            "run", "--scenario", "speed-kit", "--record", str(trace_path),
            "--json", str(serial_out), "--seed", "5",
        ]
        + QUICK
    ) == 0
    capsys.readouterr()
    assert main(
        [
            "run", "--scenario", "speed-kit", "--replay", str(trace_path),
            "--shards", "2", "--json", str(first), "--seed", "5",
        ]
        + QUICK
    ) == 0
    capsys.readouterr()
    assert main(
        [
            "run", "--scenario", "speed-kit", "--replay", str(trace_path),
            "--shards", "2", "--json", str(second),
            "--seed", "99", "--users", "3", "--products", "7",
        ]
    ) == 0
    capsys.readouterr()
    serial = json.loads(serial_out.read_text())
    a = json.loads(first.read_text())
    b = json.loads(second.read_text())
    for record in (serial, a, b):
        record.pop("wall_seconds", None)
    assert a == b
    assert a["page_views"] == serial["page_views"]
    assert a["delta_violations"] == serial["delta_violations"] == 0
    assert a["reads_checked"] == serial["reads_checked"]
    assert a["erasure_residuals"] == serial["erasure_residuals"] == 0


def test_v1_replay_against_mismatched_world_fails_actionably(
    tmp_path, capsys
):
    import io
    import json as jsonlib

    from repro.workload import dump_trace, load_trace

    trace_path = tmp_path / "v1.jsonl"
    assert main(
        ["gen-trace", "--out", str(trace_path), "--seed", "5"] + QUICK
    ) == 0
    capsys.readouterr()
    # Strip the trace down to format v1: no embedded world.
    trace = load_trace(trace_path)
    buffer = io.StringIO()
    trace.world = None
    dump_trace(trace, buffer)
    lines = buffer.getvalue().splitlines(keepends=True)
    header = jsonlib.loads(lines[0])
    header["version"] = 1
    trace_path.write_text(
        jsonlib.dumps(header) + "\n" + "".join(lines[1:])
    )
    with pytest.raises(SystemExit) as err:
        main(
            [
                "run", "--scenario", "speed-kit",
                "--replay", str(trace_path),
                "--seed", "99", "--users", "2", "--products", "5",
            ]
        )
    message = str(err.value)
    assert "cannot replay" in message
    assert "--record" in message  # actionable: how to fix it
    assert "KeyError" not in message


def test_v1_replay_with_matching_flags_still_works(tmp_path, capsys):
    import json as jsonlib

    trace_path = tmp_path / "v1.jsonl"
    assert main(
        ["gen-trace", "--out", str(trace_path), "--seed", "5"] + QUICK
    ) == 0
    lines = trace_path.read_text().splitlines(keepends=True)
    header = jsonlib.loads(lines[0])
    header["version"] = 1
    header.pop("world", None)
    trace_path.write_text(
        jsonlib.dumps(header) + "\n" + "".join(lines[1:])
    )
    capsys.readouterr()
    code = main(
        [
            "run", "--scenario", "speed-kit",
            "--replay", str(trace_path), "--seed", "5",
        ]
        + QUICK
    )
    assert code == 0
    assert "Run summary" in capsys.readouterr().out


def test_import_log_smoke(tmp_path, capsys):
    from pathlib import Path

    fixture = str(
        Path(__file__).parent
        / "workload"
        / "fixtures"
        / "sample_access_log.csv"
    )
    code = main(
        [
            "run", "--scenario", "speed-kit", "--import-log", fixture,
            "--users", "10", "--products", "20", "--seed", "3",
        ]
    )
    assert code == 0
    assert "Run summary" in capsys.readouterr().out


def test_replay_rate_smoke(tmp_path, capsys):
    trace_path = tmp_path / "recorded.jsonl"
    assert main(
        [
            "run", "--scenario", "speed-kit", "--record", str(trace_path),
            "--seed", "5",
        ]
        + QUICK
    ) == 0
    capsys.readouterr()
    code = main(
        [
            "run", "--scenario", "speed-kit", "--replay", str(trace_path),
            "--replay-rate", "2",
        ]
    )
    assert code == 0
    assert "Run summary" in capsys.readouterr().out


def test_replay_rate_rejects_nonpositive(tmp_path):
    with pytest.raises(SystemExit):
        main(
            ["run", "--replay-rate", "0", "--scenario", "speed-kit"]
            + QUICK
        )


def test_replay_and_import_log_are_mutually_exclusive(tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "run", "--replay", "a.jsonl", "--import-log", "b.csv",
                "--scenario", "speed-kit",
            ]
            + QUICK
        )


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])
