"""Tests for the multi-PoP CDN."""

import pytest

from repro.cdn import Cdn
from repro.http import Headers, Request, Response, Status, URL


def ok_response(url="/p"):
    return Response(
        status=Status.OK,
        headers=Headers(
            {"Cache-Control": "public, max-age=60", "ETag": '"v1"'}
        ),
        body="x",
        url=URL.parse(url),
        version=1,
        generated_at=0.0,
    )


def get(url="/p"):
    return Request.get(URL.parse(url))


@pytest.fixture
def cdn():
    return Cdn(["pop-eu", "pop-us"])


def test_needs_at_least_one_pop():
    with pytest.raises(ValueError):
        Cdn([])


def test_pops_are_independent(cdn):
    cdn.pop("pop-eu").admit(get(), ok_response(), now=0.0)
    assert cdn.pop("pop-eu").serve(get(), now=1.0) is not None
    assert cdn.pop("pop-us").serve(get(), now=1.0) is None


def test_unknown_pop_raises(cdn):
    with pytest.raises(KeyError):
        cdn.pop("pop-mars")


def test_purge_fans_out(cdn):
    for name in ("pop-eu", "pop-us"):
        cdn.pop(name).admit(get(), ok_response(), now=0.0)
    affected = cdn.purge(get().url.cache_key())
    assert affected == 2
    assert cdn.pop("pop-eu").serve(get(), now=1.0) is None
    assert cdn.pop("pop-us").serve(get(), now=1.0) is None


def test_purge_many_counts_totals(cdn):
    cdn.pop("pop-eu").admit(get("/a"), ok_response("/a"), now=0.0)
    cdn.pop("pop-us").admit(get("/b"), ok_response("/b"), now=0.0)
    keys = [get("/a").url.cache_key(), get("/b").url.cache_key()]
    assert cdn.purge_many(keys) == 2


def test_purge_prefix_fans_out(cdn):
    cdn.pop("pop-eu").admit(get("/a/1"), ok_response("/a/1"), now=0.0)
    cdn.pop("pop-us").admit(get("/a/2"), ok_response("/a/2"), now=0.0)
    assert cdn.purge_prefix("shop.example/a/") == 2


def test_purge_all(cdn):
    cdn.pop("pop-eu").admit(get(), ok_response(), now=0.0)
    cdn.purge_all()
    assert cdn.stored_keys() == {"pop-eu": [], "pop-us": []}


def test_overall_hit_ratio(cdn):
    pop = cdn.pop("pop-eu")
    pop.serve(get(), now=0.0)  # miss
    pop.admit(get(), ok_response(), now=0.0)
    pop.serve(get(), now=1.0)  # hit
    assert cdn.overall_hit_ratio() == pytest.approx(0.5)


def test_overall_hit_ratio_empty_is_zero(cdn):
    assert cdn.overall_hit_ratio() == 0.0


def test_for_each_pop(cdn):
    visited = []
    cdn.for_each_pop(lambda pop: visited.append(pop.name))
    assert sorted(visited) == ["pop-eu", "pop-us"]
