"""Async PoP-to-PoP replication: delivery, purge races, freshness."""

import pytest

from repro.cdn import Cdn, PopReplicator
from repro.http import Headers, Request, Response, Status, URL
from repro.sim.environment import Environment
from repro.sim.metrics import MetricRegistry

DELAY = 0.05


def ok_response(url="/p", max_age=60):
    return Response(
        status=Status.OK,
        headers=Headers(
            {"Cache-Control": f"public, max-age={max_age}", "ETag": '"v1"'}
        ),
        body="x",
        url=URL.parse(url),
        version=1,
        generated_at=0.0,
    )


def get(url="/p"):
    return Request.get(URL.parse(url))


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cdn():
    return Cdn(["pop-eu", "pop-us", "pop-ap"], metrics=MetricRegistry())


@pytest.fixture
def replicator(env, cdn):
    return PopReplicator(env, cdn, delay=DELAY)


def test_rejects_negative_delay(env, cdn):
    with pytest.raises(ValueError):
        PopReplicator(env, cdn, delay=-1.0)


def test_attaches_to_cdn(cdn, replicator):
    assert cdn.replicator is replicator


def test_admission_replicates_to_siblings(env, cdn, replicator):
    cdn.pop("pop-eu").admit(get(), ok_response(), now=env.now)
    assert replicator.in_flight == 2
    env.run()
    assert env.now == pytest.approx(DELAY)
    assert replicator.in_flight == 0
    for name in ("pop-us", "pop-ap"):
        assert cdn.pop(name).serve(get(), now=env.now) is not None
    assert cdn.metrics.counter("replication.applied").value == 2
    assert cdn.metrics.counter("edge.pop-us.replicated").value == 1


def test_replica_is_a_copy(env, cdn, replicator):
    response = ok_response()
    cdn.pop("pop-eu").admit(get(), response, now=env.now)
    env.run()
    served = cdn.pop("pop-us").serve(get(), now=env.now)
    assert served is not response  # never the same mutable object


def test_no_event_to_pops_already_holding_the_key(env, cdn, replicator):
    for name in ("pop-eu", "pop-us"):
        cdn.pop(name).admit(get(), ok_response(), now=env.now)
    # eu admits → us + ap; us admits → ap only (eu holds the key).
    assert cdn.metrics.counter("replication.sent").value == 3


def test_first_arrival_wins_duplicates_dropped(env, cdn, replicator):
    cdn.pop("pop-eu").admit(get(), ok_response(), now=env.now)
    cdn.pop("pop-us").admit(get(), ok_response(), now=env.now)
    env.run()
    # Both replicated to pop-ap; the second arrival found it present.
    assert cdn.metrics.counter("replication.dropped_present").value >= 1
    assert cdn.pop("pop-ap").serve(get(), now=env.now) is not None


def test_purge_supersedes_in_flight_replicas(env, cdn, replicator):
    key = get().url.cache_key()

    def scenario():
        cdn.pop("pop-eu").admit(get(), ok_response(), now=env.now)
        assert replicator.in_flight_for([key]) == 2
        yield env.timeout(DELAY / 2)
        cdn.purge_many([key])  # mid-flight: replicas must not apply

    env.process(scenario())
    env.run()
    assert cdn.metrics.counter("replication.dropped_purged").value == 2
    assert cdn.metrics.counter("replication.applied").value == 0
    for name in cdn.pops:
        assert cdn.pop(name).serve(get(), now=env.now) is None


def test_purge_prefix_supersedes_in_flight_replicas(env, cdn, replicator):
    def scenario():
        cdn.pop("pop-eu").admit(get("/a/1"), ok_response("/a/1"), now=env.now)
        yield env.timeout(DELAY / 2)
        cdn.purge_prefix("shop.example/a/")

    env.process(scenario())
    env.run()
    assert cdn.metrics.counter("replication.dropped_purged").value == 2
    assert cdn.pop("pop-us").serve(get("/a/1"), now=env.now) is None


def test_purge_all_supersedes_in_flight_replicas(env, cdn, replicator):
    def scenario():
        cdn.pop("pop-eu").admit(get(), ok_response(), now=env.now)
        yield env.timeout(DELAY / 2)
        cdn.purge_all()

    env.process(scenario())
    env.run()
    assert cdn.metrics.counter("replication.dropped_purged").value == 2


def test_replicas_sent_after_purge_apply(env, cdn, replicator):
    key = get().url.cache_key()

    def scenario():
        cdn.purge_many([key])
        yield env.timeout(0.001)
        cdn.pop("pop-eu").admit(get(), ok_response(), now=env.now)

    env.process(scenario())
    env.run()
    # Admitted strictly after the purge: fair game.
    assert cdn.metrics.counter("replication.applied").value == 2


def test_expired_replicas_dropped_on_arrival(env, cdn, replicator):
    def scenario():
        # max-age shorter than the propagation delay: stale on arrival.
        cdn.pop("pop-eu").admit(
            get(), ok_response(max_age=0.01), now=env.now
        )
        yield env.timeout(0)

    env.process(scenario())
    env.run()
    assert cdn.metrics.counter("replication.dropped_stale").value == 2
    assert cdn.metrics.counter("replication.applied").value == 0


def test_in_flight_for_counts_only_named_keys(env, cdn, replicator):
    cdn.pop("pop-eu").admit(get("/a"), ok_response("/a"), now=env.now)
    key_a = get("/a").url.cache_key()
    key_b = get("/b").url.cache_key()
    assert replicator.in_flight_for([key_a]) == 2
    assert replicator.in_flight_for([key_b]) == 0
    env.run()
    assert replicator.in_flight_for([key_a]) == 0


def test_purge_many_empty_is_noop_with_zero_round_trips(cdn):
    """Regression: an empty purge must not count requests, touch any
    PoP store, or accrue storage cost."""
    assert cdn.purge_many([]) == 0
    assert cdn.metrics.counter("cdn.purge_requests").value == 0
    for pop in cdn.pops.values():
        assert pop.store.backend.pending_latency() == 0.0


def versioned(version, max_age=60.0):
    return Response(
        status=Status.OK,
        headers=Headers(
            {
                "Cache-Control": f"public, max-age={max_age}",
                "ETag": f'"v{version}"',
            }
        ),
        body="x",
        url=URL.parse("/p"),
        version=version,
        generated_at=0.0,
    )


def test_purge_bookkeeping_stays_bounded(env, cdn, replicator):
    """Regression: per-key and per-prefix purge records must be pruned
    once no in-flight replica can match them, not grow forever."""

    def scenario():
        for i in range(200):
            cdn.purge_many([f"key-{i}"])
            cdn.purge_prefix(f"prefix-{i}/")
            yield env.timeout(DELAY)

    env.process(scenario())
    env.run()
    # Only records younger than one propagation delay can still matter.
    assert len(replicator._purged_at) <= 3
    assert len(replicator._purged_prefixes) <= 3


def test_purge_records_survive_within_the_delay_window(env, cdn, replicator):
    key = get().url.cache_key()

    def scenario():
        cdn.purge_many([key])
        yield env.timeout(DELAY / 4)
        # A replica admitted before the purge instant... (simulate by
        # checking supersession directly: sent at t=0, purged at t=0).
        assert replicator._superseded(key, 0.0)

    env.process(scenario())
    env.run()


def test_fresher_replica_replaces_expired_resident(env, cdn, replicator):
    """Regression: a fresh v2 replica must not be dropped just because
    the sibling still holds an expired v1 copy."""

    def scenario():
        cdn.pop("pop-eu").admit(get(), versioned(2), now=env.now)
        yield env.timeout(0.01)
        # The sibling independently fills v1 with a tiny TTL; it will
        # be expired by the time the v2 replica arrives.
        cdn.pop("pop-us").admit(get(), versioned(1, max_age=0.02), now=env.now)

    env.process(scenario())
    env.run()
    served = cdn.pop("pop-us").serve(get(), now=env.now)
    assert served is not None
    assert served.version == 2
    assert cdn.metrics.counter("replication.replaced_stale").value == 1


def test_not_newer_replica_never_replaces_expired_resident(
    env, cdn, replicator
):
    """An expired resident may only be replaced by a strictly newer
    replica — anything else could regress a client's observed version."""

    def scenario():
        cdn.pop("pop-eu").admit(get(), versioned(1), now=env.now)
        yield env.timeout(0.01)
        cdn.pop("pop-us").admit(get(), versioned(1, max_age=0.02), now=env.now)

    env.process(scenario())
    env.run()
    # The same-version replica was dropped; the expired v1 stays put
    # (to be revalidated), so nothing fresh is servable.
    assert cdn.pop("pop-us").serve(get(), now=env.now) is None
    assert cdn.metrics.counter("replication.replaced_stale").value == 0
    assert cdn.metrics.counter("replication.dropped_present").value >= 1
