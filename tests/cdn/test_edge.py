"""Tests for edge PoP semantics."""

import pytest

from repro.cdn import CacheStore, EdgeCache
from repro.http import (
    Headers,
    Request,
    Response,
    Status,
    URL,
    make_not_modified,
)


def edge(name="pop-1"):
    return EdgeCache(name, CacheStore(shared=True))


def ok_response(url="/p", ttl=60, version=1, private=False):
    directives = f"max-age={ttl}"
    if private:
        directives = f"private, {directives}"
    else:
        directives = f"public, {directives}"
    return Response(
        status=Status.OK,
        headers=Headers(
            {
                "Cache-Control": directives,
                "ETag": f'"v{version}"',
                "Content-Length": "1000",
            }
        ),
        body=f"body-v{version}",
        url=URL.parse(url),
        version=version,
        generated_at=0.0,
    )


def get(url="/p"):
    return Request.get(URL.parse(url))


class TestServe:
    def test_miss_then_hit(self):
        pop = edge()
        assert pop.serve(get(), now=0.0) is None
        pop.admit(get(), ok_response(), now=0.0)
        served = pop.serve(get(), now=1.0)
        assert served is not None
        assert served.served_by == "pop-1"
        assert served.version == 1

    def test_served_copy_is_isolated(self):
        pop = edge()
        pop.admit(get(), ok_response(), now=0.0)
        served = pop.serve(get(), now=1.0)
        served.headers["X-Mutated"] = "yes"
        again = pop.serve(get(), now=2.0)
        assert "X-Mutated" not in again.headers

    def test_expired_entry_is_a_miss(self):
        pop = edge()
        pop.admit(get(), ok_response(ttl=10), now=0.0)
        assert pop.serve(get(), now=20.0) is None

    def test_hit_ratio(self):
        pop = edge()
        pop.serve(get(), now=0.0)  # miss
        pop.admit(get(), ok_response(), now=0.0)
        pop.serve(get(), now=1.0)  # hit
        pop.serve(get(), now=2.0)  # hit
        assert pop.hit_ratio() == pytest.approx(2 / 3)

    def test_requires_shared_store(self):
        with pytest.raises(ValueError):
            EdgeCache("bad", CacheStore(shared=False))


class TestAdmission:
    def test_private_response_not_stored(self):
        pop = edge()
        pop.admit(get(), ok_response(private=True), now=0.0)
        assert pop.serve(get(), now=0.5) is None

    def test_error_response_not_stored(self):
        pop = edge()
        error = ok_response()
        error.status = Status.INTERNAL_ERROR
        pop.admit(get(), error, now=0.0)
        assert pop.serve(get(), now=0.5) is None

    def test_admit_returns_forwardable_copy(self):
        pop = edge()
        original = ok_response()
        forwarded = pop.admit(get(), original, now=0.0)
        forwarded.headers["X-Hop"] = "edge"
        assert "X-Hop" not in pop.serve(get(), now=1.0).headers


class TestRevalidation:
    def test_revalidation_base_for_stale_entry(self):
        pop = edge()
        pop.admit(get(), ok_response(ttl=10), now=0.0)
        base = pop.revalidation_base(get(), now=20.0)
        assert base is not None
        assert base.etag == '"v1"'

    def test_no_base_without_entry(self):
        assert edge().revalidation_base(get(), now=0.0) is None

    def test_no_base_without_etag(self):
        pop = edge()
        resp = ok_response()
        del resp.headers["ETag"]
        pop.admit(get(), resp, now=0.0)
        assert pop.revalidation_base(get(), now=100.0) is None

    def test_refresh_restamps_entry(self):
        pop = edge()
        pop.admit(get(), ok_response(ttl=10), now=0.0)
        assert pop.serve(get(), now=15.0) is None  # stale now
        stale = pop.revalidation_base(get(), now=15.0)
        nm = make_not_modified(stale, at=15.0)
        refreshed = pop.refresh(get(), nm, now=15.0)
        assert refreshed.status == Status.OK
        assert refreshed.served_by == "pop-1"
        # Fresh again for another TTL window.
        assert pop.serve(get(), now=20.0) is not None
        assert pop.serve(get(), now=30.0) is None

    def test_refresh_rejects_non_304(self):
        pop = edge()
        with pytest.raises(ValueError):
            pop.refresh(get(), ok_response(), now=0.0)

    def test_refresh_when_entry_vanished_returns_none(self):
        pop = edge()
        pop.admit(get(), ok_response(), now=0.0)
        stale = pop.revalidation_base(get(), now=0.0)
        nm = make_not_modified(stale, at=5.0)
        pop.purge(get().url.cache_key())
        assert pop.refresh(get(), nm, now=5.0) is None


class TestPurge:
    def test_purge_removes_entry(self):
        pop = edge()
        pop.admit(get(), ok_response(), now=0.0)
        assert pop.purge(get().url.cache_key())
        assert pop.serve(get(), now=0.5) is None

    def test_purge_missing_is_false(self):
        assert not edge().purge("ghost")

    def test_purge_prefix(self):
        pop = edge()
        pop.admit(get("/a/1"), ok_response(url="/a/1"), now=0.0)
        pop.admit(get("/a/2"), ok_response(url="/a/2"), now=0.0)
        pop.admit(get("/b/1"), ok_response(url="/b/1"), now=0.0)
        assert pop.purge_prefix("shop.example/a/") == 2
        assert pop.serve(get("/b/1"), now=0.5) is not None
