"""CacheStore policy behaviour over every pluggable storage engine."""

import random

import pytest

from repro.cdn import CacheStore, EvictionPolicy
from repro.http import Headers, Response, Status, URL
from repro.simnet.delay import ConstantDelay
from repro.storage import (
    InMemoryBackend,
    ShardedBackend,
    SimulatedRemoteBackend,
)

ENGINE_FACTORIES = {
    "inmemory": InMemoryBackend,
    "sharded": lambda: ShardedBackend(n_shards=4),
    "remote": lambda: SimulatedRemoteBackend(rng=random.Random(5)),
}


def response(ttl=60, size=100, version=1):
    return Response(
        status=Status.OK,
        headers=Headers(
            {
                "Cache-Control": f"public, max-age={ttl}",
                "Content-Length": str(size),
                "ETag": f'"v{version}"',
            }
        ),
        body="x",
        url=URL.parse("/r"),
        version=version,
        generated_at=0.0,
    )


@pytest.fixture(params=sorted(ENGINE_FACTORIES))
def store(request):
    return CacheStore(shared=True, backend=ENGINE_FACTORIES[request.param]())


class TestPolicyOverEngines:
    def test_roundtrip(self, store):
        store.put("k", response(), now=0.0)
        assert store.get_fresh("k", now=1.0).response.version == 1
        assert len(store) == 1
        assert store.total_bytes == 100

    def test_remove_prefix_spans_shards(self, store):
        # Satellite: hash routing scatters a shared prefix across all
        # partitions; the purge must still reach every one of them.
        for i in range(40):
            store.put(f"pages/p{i}", response(), now=0.0)
        for i in range(10):
            store.put(f"api/a{i}", response(), now=0.0)
        assert store.remove_prefix("pages/") == 40
        assert len(store) == 10
        assert all(key.startswith("api/") for key in store.keys())
        assert store.total_bytes == 10 * 100

    def test_stale_get_fresh_is_a_pure_miss(self, store):
        # Satellite: a stale lookup must not bump hits or recency.
        store.put("k", response(ttl=10), now=0.0)
        assert store.get_fresh("k", now=20.0) is None
        assert store.peek("k").hits == 0

    def test_expire_drops_only_stale(self, store):
        store.put("old", response(ttl=10), now=0.0)
        store.put("new", response(ttl=1000), now=0.0)
        assert store.expire(now=100.0) == 1
        assert store.keys() == ["new"]

    def test_utf8_payload_sizing(self, store):
        # Satellite: str bodies are sized by UTF-8 bytes, not chars.
        resp = response()
        del resp.headers["Content-Length"]
        resp.body = "ü" * 10  # 10 chars, 20 UTF-8 bytes
        store.put("k", resp, now=0.0)
        assert store.peek("k").size_bytes == 20
        assert store.total_bytes == 20


class TestCombinedCapacity:
    """Satellite: eviction under max_entries AND max_bytes together."""

    @pytest.fixture(params=sorted(ENGINE_FACTORIES))
    def bounded(self, request):
        return CacheStore(
            shared=True,
            max_entries=5,
            max_bytes=350,
            backend=ENGINE_FACTORIES[request.param](),
        )

    def test_entry_cap_binds_first(self, bounded):
        for i in range(8):
            bounded.put(f"k{i}", response(size=10), now=float(i))
        assert len(bounded) == 5
        assert bounded.total_bytes == 50
        assert bounded.evictions == 3

    def test_byte_cap_binds_first(self, bounded):
        for i in range(5):
            bounded.put(f"k{i}", response(size=100), now=float(i))
        # 5 entries fit the entry cap but 500 bytes bust the byte cap.
        assert bounded.total_bytes <= 350
        assert len(bounded) == 3
        assert bounded.evictions == 2

    def test_both_invariants_hold_under_churn(self, bounded):
        rng = random.Random(11)
        for i in range(200):
            size = rng.choice([10, 80, 150])
            bounded.put(f"k{rng.randrange(30)}", response(size=size), now=float(i))
            if rng.random() < 0.3:
                bounded.get_fresh(f"k{rng.randrange(30)}", now=float(i))
        assert len(bounded) <= 5
        assert bounded.total_bytes <= 350
        # Policy bookkeeping and engine contents agree exactly.
        assert sorted(bounded.keys()) == sorted(bounded.backend.keys())
        assert bounded.total_bytes == sum(
            entry.size_bytes for entry in bounded
        )

    def test_oversized_entry_kept(self, bounded):
        bounded.put("big", response(size=1000), now=0.0)
        assert bounded.peek("big") is not None
        assert len(bounded) == 1


class TestLfuOverEngines:
    @pytest.fixture(params=sorted(ENGINE_FACTORIES))
    def lfu(self, request):
        return CacheStore(
            shared=True,
            max_entries=3,
            policy=EvictionPolicy.LFU,
            backend=ENGINE_FACTORIES[request.param](),
        )

    def test_least_hit_entry_goes(self, lfu):
        lfu.put("cold", response(), now=0.0)
        lfu.put("warm", response(), now=1.0)
        lfu.put("hot", response(), now=2.0)
        lfu.get_fresh("warm", now=3.0)
        for _ in range(3):
            lfu.get_fresh("hot", now=3.0)
        lfu.put("new", response(), now=4.0)
        assert "cold" not in lfu
        assert sorted(lfu.keys()) == ["hot", "new", "warm"]

    def test_ties_break_oldest_first(self, lfu):
        lfu.put("first", response(), now=0.0)
        lfu.put("second", response(), now=1.0)
        lfu.put("third", response(), now=2.0)
        lfu.put("new", response(), now=3.0)  # all at zero hits
        assert "first" not in lfu
        assert "second" in lfu

    def test_heap_correct_after_key_churn(self, lfu):
        # Replacement and removal leave stale heap items behind; the
        # lazy heap must keep picking true minima through heavy churn.
        rng = random.Random(3)
        for i in range(300):
            key = f"k{rng.randrange(8)}"
            action = rng.random()
            if action < 0.5:
                lfu.put(key, response(), now=float(i))
            elif action < 0.8:
                lfu.get_fresh(key, now=float(i))
            else:
                lfu.remove(key)
        assert len(lfu) <= 3
        assert sorted(lfu.keys()) == sorted(lfu.backend.keys())
        # One more round: the victim must have minimal hit count.
        lfu.clear()
        lfu.put("a", response(), now=0.0)
        lfu.put("b", response(), now=1.0)
        lfu.put("c", response(), now=2.0)
        lfu.get_fresh("a", now=3.0)
        lfu.get_fresh("c", now=3.0)
        lfu.put("d", response(), now=4.0)
        assert "b" not in lfu


class TestRemoteCostSurface:
    def test_drain_latency_proxies_backend(self):
        backend = SimulatedRemoteBackend(
            read_delay=ConstantDelay(0.001),
            write_delay=ConstantDelay(0.002),
        )
        store = CacheStore(shared=True, backend=backend)
        store.put("k", response(), now=0.0)
        store.get_fresh("k", now=1.0)
        assert store.drain_latency() == pytest.approx(0.003)
        assert store.drain_latency() == 0.0

    def test_local_store_is_free(self):
        store = CacheStore(shared=True)
        store.put("k", response(), now=0.0)
        assert store.drain_latency() == 0.0
