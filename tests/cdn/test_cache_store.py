"""Tests for the generic TTL/LRU cache store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cdn import CacheStore, EvictionPolicy
from repro.http import Headers, Response, Status, URL


def response(ttl=60, size=100, url="/r", version=1):
    return Response(
        status=Status.OK,
        headers=Headers(
            {
                "Cache-Control": f"public, max-age={ttl}",
                "Content-Length": str(size),
                "ETag": f'"v{version}"',
            }
        ),
        body="x",
        url=URL.parse(url),
        version=version,
        generated_at=0.0,
    )


class TestBasics:
    def test_put_get(self):
        store = CacheStore(shared=True)
        store.put("k", response(), now=0.0)
        entry = store.get("k", now=1.0)
        assert entry is not None
        assert entry.response.version == 1

    def test_get_missing(self):
        assert CacheStore(shared=True).get("ghost", now=0.0) is None

    def test_get_fresh_respects_ttl(self):
        store = CacheStore(shared=True)
        store.put("k", response(ttl=10), now=0.0)
        assert store.get_fresh("k", now=5.0) is not None
        assert store.get_fresh("k", now=10.0) is None
        # Entry is still *stored* (lazily expired).
        assert store.get("k", now=10.0) is not None

    def test_shared_store_uses_s_maxage(self):
        resp = response()
        resp.headers["Cache-Control"] = "max-age=10, s-maxage=100"
        shared = CacheStore(shared=True)
        private = CacheStore(shared=False)
        shared.put("k", resp, now=0.0)
        private.put("k", resp.copy(), now=0.0)
        assert shared.get_fresh("k", now=50.0) is not None
        assert private.get_fresh("k", now=50.0) is None

    def test_put_replaces(self):
        store = CacheStore(shared=True)
        store.put("k", response(version=1), now=0.0)
        store.put("k", response(version=2), now=1.0)
        assert len(store) == 1
        assert store.get("k", now=2.0).response.version == 2

    def test_remove(self):
        store = CacheStore(shared=True)
        store.put("k", response(), now=0.0)
        assert store.remove("k")
        assert not store.remove("k")
        assert store.invalidations == 1

    def test_remove_prefix(self):
        store = CacheStore(shared=True)
        for path in ("/a/1", "/a/2", "/b/1"):
            store.put(path, response(url=path), now=0.0)
        assert store.remove_prefix("/a/") == 2
        assert store.keys() == ["/b/1"]

    def test_clear(self):
        store = CacheStore(shared=True)
        store.put("k", response(size=500), now=0.0)
        store.clear()
        assert len(store) == 0
        assert store.total_bytes == 0

    def test_peek_does_not_touch_recency_or_hits(self):
        store = CacheStore(shared=True, max_entries=2)
        store.put("old", response(), now=0.0)
        store.put("new", response(), now=0.0)
        store.peek("old")
        store.put("third", response(), now=1.0)
        # "old" was evicted despite the peek: peek is not a use.
        assert "old" not in store
        assert store.peek("new").hits == 0

    def test_expire_drops_stale(self):
        store = CacheStore(shared=True)
        store.put("short", response(ttl=5), now=0.0)
        store.put("long", response(ttl=500), now=0.0)
        assert store.expire(now=10.0) == 1
        assert "long" in store
        assert "short" not in store

    def test_size_accounting(self):
        store = CacheStore(shared=True)
        store.put("a", response(size=100), now=0.0)
        store.put("b", response(size=250), now=0.0)
        assert store.total_bytes == 350
        store.remove("a")
        assert store.total_bytes == 250


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        store = CacheStore(shared=True, max_entries=2)
        store.put("a", response(), now=0.0)
        store.put("b", response(), now=0.0)
        store.get("a", now=1.0)  # refresh a's recency
        store.put("c", response(), now=2.0)
        assert "a" in store
        assert "b" not in store
        assert store.evictions == 1

    def test_fifo_ignores_recency(self):
        store = CacheStore(
            shared=True, max_entries=2, policy=EvictionPolicy.FIFO
        )
        store.put("a", response(), now=0.0)
        store.put("b", response(), now=0.0)
        store.get("a", now=1.0)
        store.put("c", response(), now=2.0)
        assert "a" not in store

    def test_lfu_evicts_least_hit(self):
        store = CacheStore(
            shared=True, max_entries=2, policy=EvictionPolicy.LFU
        )
        store.put("popular", response(), now=0.0)
        store.put("ignored", response(), now=0.0)
        store.get("popular", now=1.0)
        store.get("popular", now=2.0)
        store.put("newcomer", response(), now=3.0)
        assert "popular" in store
        assert "ignored" not in store
        assert "newcomer" in store

    def test_lfu_ties_break_oldest_first(self):
        store = CacheStore(
            shared=True, max_entries=2, policy=EvictionPolicy.LFU
        )
        store.put("older", response(), now=0.0)
        store.put("newer", response(), now=1.0)
        store.put("third", response(), now=2.0)
        assert "older" not in store
        assert "newer" in store

    def test_byte_capacity(self):
        store = CacheStore(shared=True, max_bytes=300)
        store.put("a", response(size=150), now=0.0)
        store.put("b", response(size=150), now=0.0)
        store.put("c", response(size=150), now=0.0)
        assert len(store) == 2
        assert store.total_bytes <= 300
        assert "a" not in store

    def test_oversized_entry_is_kept_if_alone(self):
        store = CacheStore(shared=True, max_bytes=100)
        store.put("huge", response(size=500), now=0.0)
        assert "huge" in store

    def test_new_entry_is_protected_from_its_own_insert(self):
        store = CacheStore(shared=True, max_entries=2)
        store.put("a", response(), now=0.0)
        store.put("b", response(), now=0.0)
        store.put("fresh", response(), now=1.0)
        assert "fresh" in store

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CacheStore(shared=True, max_entries=0)
        with pytest.raises(ValueError):
            CacheStore(shared=True, max_bytes=-1)

    @given(
        sizes=st.lists(st.integers(1, 400), min_size=1, max_size=60),
        max_bytes=st.integers(200, 1000),
    )
    def test_byte_budget_never_exceeded_for_multi_entry(self, sizes, max_bytes):
        store = CacheStore(shared=True, max_bytes=max_bytes)
        for index, size in enumerate(sizes):
            store.put(f"k{index}", response(size=size), now=float(index))
            if len(store) > 1:
                assert store.total_bytes <= max_bytes

    @given(keys=st.lists(st.sampled_from("abcdef"), max_size=80))
    def test_entry_count_invariant(self, keys):
        store = CacheStore(shared=True, max_entries=3)
        for index, key in enumerate(keys):
            store.put(key, response(), now=float(index))
            assert len(store) <= 3


class TestHitBookkeeping:
    def test_hits_counted_per_entry(self):
        store = CacheStore(shared=True)
        store.put("k", response(), now=0.0)
        store.get("k", now=1.0)
        store.get("k", now=2.0)
        assert store.peek("k").hits == 2

    def test_content_length_parsing_fallbacks(self):
        resp = response()
        resp.headers["Content-Length"] = "not-a-number"
        resp.body = "12345"
        store = CacheStore(shared=True)
        entry = store.put("k", resp, now=0.0)
        assert entry.size_bytes == 5

    def test_no_length_no_body(self):
        resp = response()
        del resp.headers["Content-Length"]
        resp.body = None
        store = CacheStore(shared=True)
        assert store.put("k", resp, now=0.0).size_bytes == 0
