"""Model-based stateful testing of the cache store.

Hypothesis drives arbitrary operation sequences against a
:class:`CacheStore` and a trivially-correct dictionary model, checking
after every step that the store agrees with the model on membership,
freshness, and capacity invariants.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.cdn import CacheStore
from repro.http import Headers, Response, Status, URL

MAX_ENTRIES = 5
KEYS = [f"key-{i}" for i in range(8)]


def make_response(ttl, size, version):
    return Response(
        status=Status.OK,
        headers=Headers(
            {
                "Cache-Control": f"public, max-age={ttl}",
                "Content-Length": str(size),
                "ETag": f'"v{version}"',
            }
        ),
        body="x",
        url=URL.of("/r"),
        version=version,
        generated_at=0.0,
    )


class CacheStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = CacheStore(shared=True, max_entries=MAX_ENTRIES)
        # model: key -> (generated_at, ttl, version)
        self.model = {}
        self.now = 0.0
        self.version = 0

    @rule(
        key=st.sampled_from(KEYS),
        ttl=st.floats(1.0, 100.0),
        size=st.integers(1, 1000),
    )
    def put(self, key, ttl, size):
        self.version += 1
        response = make_response(ttl, size, self.version)
        response.generated_at = self.now
        self.store.put(key, response, self.now)
        self.model[key] = (self.now, ttl, self.version)

    @rule(key=st.sampled_from(KEYS))
    def get_fresh(self, key):
        entry = self.store.get_fresh(key, self.now)
        if entry is not None:
            # Anything the store serves fresh must be in the model and
            # genuinely fresh — never a phantom or expired entry.
            assert key in self.model
            generated_at, ttl, version = self.model[key]
            assert entry.response.version == version
            assert self.now - generated_at < ttl
        elif key in self.model:
            generated_at, ttl, _ = self.model[key]
            # A fresh model entry may still be missing (evicted), but
            # an expired one must never be served — already covered.
            if self.now - generated_at < ttl:
                pass  # eviction is allowed

    @rule(key=st.sampled_from(KEYS))
    def remove(self, key):
        existed_in_store = key in self.store
        removed = self.store.remove(key)
        assert removed == existed_in_store
        self.model.pop(key, None)

    @rule(delta=st.floats(0.1, 50.0))
    def advance_time(self, delta):
        self.now += delta

    @rule()
    def expire(self):
        self.store.expire(self.now)
        # Post-condition: no stored entry is stale.
        for entry in self.store:
            generated_at, ttl, _ = self.model[entry.key]
            assert self.now - generated_at < ttl

    @invariant()
    def capacity_respected(self):
        assert len(self.store) <= MAX_ENTRIES

    @invariant()
    def no_phantom_entries(self):
        for key in self.store.keys():
            assert key in self.model

    @invariant()
    def byte_accounting_consistent(self):
        total = sum(entry.size_bytes for entry in self.store)
        assert total == self.store.total_bytes


CacheStoreMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestCacheStoreStateful = CacheStoreMachine.TestCase
