"""Tests for the structured URL type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.http import URL


def test_path_must_be_absolute():
    with pytest.raises(ValueError):
        URL(path="relative")


def test_query_order_is_normalized():
    a = URL.of("/p", {"b": 2, "a": 1})
    b = URL.of("/p", {"a": 1, "b": 2})
    assert a == b
    assert a.cache_key() == b.cache_key()
    assert hash(a) == hash(b)


def test_str_rendering():
    url = URL.of("/product/42", {"color": "red"})
    assert str(url) == "shop.example/product/42?color=red"
    assert str(URL.of("/plain")) == "shop.example/plain"


def test_parse_round_trip():
    url = URL.parse("/search?q=shoes&page=2")
    assert url.path == "/search"
    assert url.params == {"q": "shoes", "page": "2"}


def test_parse_without_query():
    url = URL.parse("/about")
    assert url.path == "/about"
    assert url.params == {}


def test_parse_empty_value():
    assert URL.parse("/p?flag=").params == {"flag": ""}


def test_with_param_adds_and_replaces():
    url = URL.of("/p", {"a": "1"})
    assert url.with_param("b", 2).params == {"a": "1", "b": "2"}
    assert url.with_param("a", 9).params == {"a": "9"}
    # Original is unchanged (frozen semantics).
    assert url.params == {"a": "1"}


def test_without_param():
    url = URL.of("/p", {"a": "1", "b": "2"})
    assert url.without_param("a").params == {"b": "2"}
    assert url.without_param("zzz").params == {"a": "1", "b": "2"}


def test_extension():
    assert URL.of("/static/app.min.JS").extension == "js"
    assert URL.of("/img/logo.png").extension == "png"
    assert URL.of("/product/42").extension == ""
    assert URL.of("/").extension == ""


def test_different_origins_are_different_keys():
    a = URL.of("/p", origin="a.example")
    b = URL.of("/p", origin="b.example")
    assert a != b
    assert a.cache_key() != b.cache_key()


@given(
    path=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=12,
    )
)
def test_parse_str_round_trip(path):
    url = URL.of("/" + path, {"k": "v"})
    reparsed = URL.parse(str(url).replace("shop.example", "", 1))
    assert reparsed == url
