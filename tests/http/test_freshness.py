"""Tests for RFC 7234-style freshness computation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.http import (
    Headers,
    Request,
    Response,
    Status,
    URL,
    age_at,
    allows_stale_while_revalidate,
    conditional_request_for,
    expires_at,
    freshness_lifetime,
    is_cacheable,
    is_fresh_at,
    remaining_ttl,
)


def response(cache_control=None, status=Status.OK, generated_at=100.0, etag=None):
    headers = Headers()
    if cache_control is not None:
        headers["Cache-Control"] = cache_control
    if etag is not None:
        headers["ETag"] = etag
    return Response(
        status=status,
        headers=headers,
        url=URL.of("/r"),
        generated_at=generated_at,
    )


class TestCacheability:
    def test_plain_max_age_is_cacheable_everywhere(self):
        resp = response("max-age=60")
        assert is_cacheable(resp, shared=True)
        assert is_cacheable(resp, shared=False)

    def test_no_store_is_never_cacheable(self):
        resp = response("no-store, max-age=60")
        assert not is_cacheable(resp, shared=True)
        assert not is_cacheable(resp, shared=False)

    def test_private_only_cacheable_in_private_caches(self):
        resp = response("private, max-age=60")
        assert not is_cacheable(resp, shared=True)
        assert is_cacheable(resp, shared=False)

    def test_s_maxage_only_enables_shared_caching(self):
        resp = response("s-maxage=60")
        assert is_cacheable(resp, shared=True)
        assert not is_cacheable(resp, shared=False)

    def test_without_lifetime_not_cacheable(self):
        assert not is_cacheable(response(None), shared=True)
        assert not is_cacheable(response("public"), shared=True)

    def test_zero_max_age_not_cacheable(self):
        assert not is_cacheable(response("max-age=0"), shared=False)

    def test_error_statuses_not_cacheable(self):
        resp = response("max-age=60", status=Status.NOT_FOUND)
        assert not is_cacheable(resp, shared=True)


class TestFreshness:
    def test_age_accumulates(self):
        resp = response("max-age=60", generated_at=100.0)
        assert age_at(resp, 100.0) == 0.0
        assert age_at(resp, 130.0) == 30.0

    def test_age_never_negative(self):
        resp = response("max-age=60", generated_at=100.0)
        assert age_at(resp, 90.0) == 0.0

    def test_fresh_until_lifetime(self):
        resp = response("max-age=60", generated_at=100.0)
        assert is_fresh_at(resp, 159.9, shared=False)
        assert not is_fresh_at(resp, 160.0, shared=False)

    def test_shared_cache_uses_s_maxage(self):
        resp = response("max-age=10, s-maxage=100", generated_at=0.0)
        assert is_fresh_at(resp, 50.0, shared=True)
        assert not is_fresh_at(resp, 50.0, shared=False)

    def test_no_cache_is_never_fresh(self):
        resp = response("no-cache, max-age=60", generated_at=0.0)
        assert not is_fresh_at(resp, 1.0, shared=False)

    def test_immutable_is_always_fresh(self):
        resp = response("immutable, max-age=1", generated_at=0.0)
        assert is_fresh_at(resp, 10**9, shared=False)

    def test_remaining_ttl_and_expires(self):
        resp = response("max-age=60", generated_at=100.0)
        assert remaining_ttl(resp, 120.0, shared=False) == 40.0
        assert remaining_ttl(resp, 200.0, shared=False) == 0.0
        assert expires_at(resp, shared=False) == 160.0

    def test_lifetime_defaults_to_zero(self):
        assert freshness_lifetime(response(None), shared=True) == 0.0

    @given(
        max_age=st.floats(min_value=0.1, max_value=10**6),
        elapsed=st.floats(min_value=0.0, max_value=2 * 10**6),
    )
    def test_fresh_iff_age_below_lifetime(self, max_age, elapsed):
        resp = response(f"max-age={max_age}", generated_at=0.0)
        assert is_fresh_at(resp, elapsed, shared=False) == (elapsed < max_age)


class TestStaleWhileRevalidate:
    def test_window_extends_past_expiry(self):
        resp = response(
            "max-age=10, stale-while-revalidate=20", generated_at=0.0
        )
        assert not is_fresh_at(resp, 15.0, shared=False)
        assert allows_stale_while_revalidate(resp, 15.0, shared=False)
        assert not allows_stale_while_revalidate(resp, 31.0, shared=False)

    def test_without_directive_no_window(self):
        resp = response("max-age=10", generated_at=0.0)
        assert not allows_stale_while_revalidate(resp, 15.0, shared=False)


class TestConditionalRequest:
    def test_adds_if_none_match(self):
        stored = response("max-age=60", etag='"abc"')
        req = conditional_request_for(Request.get(URL.of("/r")), stored)
        assert req.if_none_match == '"abc"'

    def test_without_etag_returns_plain_copy(self):
        stored = response("max-age=60")
        original = Request.get(URL.of("/r"))
        req = conditional_request_for(original, stored)
        assert req.if_none_match is None
        assert req is not original
