"""Tests for the case-insensitive header map."""

from repro.http import Headers


def test_lookup_is_case_insensitive():
    h = Headers({"Cache-Control": "max-age=60"})
    assert h["cache-control"] == "max-age=60"
    assert h["CACHE-CONTROL"] == "max-age=60"


def test_contains_is_case_insensitive():
    h = Headers({"ETag": "abc"})
    assert "etag" in h
    assert "Etag" in h
    assert "Missing" not in h


def test_contains_non_string_is_false():
    h = Headers({"ETag": "abc"})
    assert 42 not in h


def test_set_overwrites_regardless_of_case():
    h = Headers()
    h["X-Foo"] = "1"
    h["x-foo"] = "2"
    assert len(h) == 1
    assert h["X-FOO"] == "2"


def test_first_spelling_is_preserved_for_display():
    h = Headers()
    h["X-Custom-Name"] = "1"
    h["x-custom-name"] = "2"
    assert list(h) == ["X-Custom-Name"]


def test_get_with_default():
    h = Headers()
    assert h.get("missing") is None
    assert h.get("missing", "fallback") == "fallback"


def test_pop_removes_and_returns():
    h = Headers({"A": "1"})
    assert h.pop("a") == "1"
    assert "A" not in h
    assert h.pop("a", "gone") == "gone"


def test_delete_is_case_insensitive():
    h = Headers({"Set-Cookie": "session=1"})
    del h["set-cookie"]
    assert len(h) == 0


def test_values_are_coerced_to_str():
    h = Headers()
    h["Content-Length"] = 123
    assert h["content-length"] == "123"


def test_copy_is_independent():
    h = Headers({"A": "1"})
    clone = h.copy()
    clone["A"] = "2"
    assert h["A"] == "1"


def test_equality_ignores_case_and_accepts_dicts():
    assert Headers({"A": "1"}) == Headers({"a": "1"})
    assert Headers({"A": "1"}) == {"a": "1"}
    assert Headers({"A": "1"}) != Headers({"A": "2"})


def test_update_merges():
    h = Headers({"A": "1"})
    h.update({"B": "2", "a": "3"})
    assert h["A"] == "3"
    assert h["B"] == "2"


def test_setdefault_keeps_existing():
    h = Headers({"A": "1"})
    assert h.setdefault("a", "2") == "1"
    assert h.setdefault("B", "2") == "2"
    assert h["B"] == "2"
