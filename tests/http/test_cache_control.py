"""Tests for Cache-Control parsing and semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.http import CacheControl


class TestParsing:
    def test_empty_and_none(self):
        assert CacheControl.parse(None).max_age is None
        assert CacheControl.parse("").max_age is None

    def test_max_age(self):
        cc = CacheControl.parse("max-age=60")
        assert cc.max_age == 60.0

    def test_s_maxage_and_public(self):
        cc = CacheControl.parse("public, s-maxage=120, max-age=30")
        assert cc.public
        assert cc.s_maxage == 120.0
        assert cc.max_age == 30.0

    def test_flags(self):
        cc = CacheControl.parse(
            "no-store, no-cache, private, must-revalidate, immutable"
        )
        assert cc.no_store and cc.no_cache and cc.private
        assert cc.must_revalidate and cc.immutable

    def test_whitespace_and_case_tolerated(self):
        cc = CacheControl.parse("  Max-Age = 10 ,  PUBLIC ")
        assert cc.max_age == 10.0
        assert cc.public

    def test_invalid_number_treated_as_zero(self):
        assert CacheControl.parse("max-age=banana").max_age == 0.0

    def test_negative_number_clamped_to_zero(self):
        assert CacheControl.parse("max-age=-5").max_age == 0.0

    def test_quoted_value(self):
        assert CacheControl.parse('max-age="45"').max_age == 45.0

    def test_unknown_directives_preserved(self):
        cc = CacheControl.parse("x-speedkit=on, proxy-revalidate")
        assert cc.extensions == {"x-speedkit": "on", "proxy-revalidate": None}

    def test_stale_while_revalidate(self):
        cc = CacheControl.parse("max-age=10, stale-while-revalidate=30")
        assert cc.stale_while_revalidate == 30.0


class TestSemantics:
    def test_shared_lifetime_prefers_s_maxage(self):
        cc = CacheControl.parse("s-maxage=100, max-age=10")
        assert cc.shared_lifetime() == 100.0
        assert cc.private_lifetime() == 10.0

    def test_shared_lifetime_falls_back_to_max_age(self):
        assert CacheControl.parse("max-age=10").shared_lifetime() == 10.0

    def test_no_store_forbids_everyone(self):
        cc = CacheControl.parse("no-store")
        assert cc.forbids_storing(shared=True)
        assert cc.forbids_storing(shared=False)

    def test_private_forbids_shared_only(self):
        cc = CacheControl.parse("private, max-age=60")
        assert cc.forbids_storing(shared=True)
        assert not cc.forbids_storing(shared=False)

    def test_no_cache_requires_revalidation(self):
        assert CacheControl.parse(
            "no-cache"
        ).forbids_serving_without_revalidation()


class TestRoundTrip:
    def test_serialize_simple(self):
        cc = CacheControl.parse("public, max-age=60")
        assert CacheControl.parse(cc.serialize()) == cc

    @given(
        max_age=st.one_of(st.none(), st.integers(0, 10**6)),
        s_maxage=st.one_of(st.none(), st.integers(0, 10**6)),
        swr=st.one_of(st.none(), st.integers(0, 10**6)),
        flags=st.lists(
            st.sampled_from(
                [
                    "no_store",
                    "no_cache",
                    "private",
                    "public",
                    "must_revalidate",
                    "immutable",
                ]
            ),
            unique=True,
        ),
    )
    def test_serialize_parse_round_trip(self, max_age, s_maxage, swr, flags):
        cc = CacheControl(
            max_age=None if max_age is None else float(max_age),
            s_maxage=None if s_maxage is None else float(s_maxage),
            stale_while_revalidate=None if swr is None else float(swr),
        )
        for flag in flags:
            setattr(cc, flag, True)
        assert CacheControl.parse(cc.serialize()) == cc
