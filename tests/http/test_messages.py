"""Tests for request/response messages and validators."""

from repro.http import (
    Headers,
    Method,
    Request,
    Response,
    Status,
    URL,
    make_not_modified,
    revalidates,
)


def make_response(etag="v1", cache_control="max-age=60", version=1):
    headers = Headers({"ETag": etag, "Cache-Control": cache_control})
    return Response(
        status=Status.OK,
        headers=headers,
        body="<html>",
        url=URL.of("/p"),
        version=version,
        generated_at=10.0,
    )


class TestRequest:
    def test_get_factory(self):
        req = Request.get(URL.of("/p"))
        assert req.method is Method.GET
        assert req.method.is_safe

    def test_unsafe_methods(self):
        assert not Method.POST.is_safe
        assert not Method.PUT.is_safe
        assert not Method.DELETE.is_safe

    def test_with_header_does_not_mutate_original(self):
        req = Request.get(URL.of("/p"))
        conditional = req.with_header("If-None-Match", "v1")
        assert conditional.if_none_match == "v1"
        assert req.if_none_match is None

    def test_copy_has_independent_headers(self):
        req = Request.get(URL.of("/p"), headers=Headers({"A": "1"}))
        clone = req.copy()
        clone.headers["A"] = "2"
        assert req.headers["A"] == "1"


class TestResponse:
    def test_properties(self):
        resp = make_response()
        assert resp.ok
        assert resp.etag == "v1"
        assert resp.cache_control.max_age == 60.0

    def test_copy_has_independent_headers(self):
        resp = make_response()
        clone = resp.copy()
        clone.headers["Age"] = "5"
        assert "Age" not in resp.headers

    def test_not_ok_statuses(self):
        resp = Response(status=Status.NOT_FOUND)
        assert not resp.ok


class TestRevalidation:
    def test_matching_etag_revalidates(self):
        stored = make_response(etag="v1")
        req = Request.get(URL.of("/p")).with_header("If-None-Match", "v1")
        assert revalidates(req, stored)

    def test_mismatched_etag_does_not(self):
        stored = make_response(etag="v2")
        req = Request.get(URL.of("/p")).with_header("If-None-Match", "v1")
        assert not revalidates(req, stored)

    def test_no_validator_does_not(self):
        stored = make_response(etag="v1")
        assert not revalidates(Request.get(URL.of("/p")), stored)

    def test_etag_list_matches_any(self):
        stored = make_response(etag="v2")
        req = Request.get(URL.of("/p")).with_header("If-None-Match", "v1, v2")
        assert revalidates(req, stored)

    def test_star_matches_everything(self):
        stored = make_response(etag="anything")
        req = Request.get(URL.of("/p")).with_header("If-None-Match", "*")
        assert revalidates(req, stored)

    def test_stored_without_etag_never_revalidates(self):
        stored = make_response()
        del stored.headers["ETag"]
        req = Request.get(URL.of("/p")).with_header("If-None-Match", "v1")
        assert not revalidates(req, stored)


class TestNotModified:
    def test_304_carries_validators_and_freshness(self):
        stored = make_response(etag="v7", cache_control="max-age=99")
        nm = make_not_modified(stored, at=50.0)
        assert nm.status == Status.NOT_MODIFIED
        assert nm.etag == "v7"
        assert nm.headers["Cache-Control"] == "max-age=99"
        assert nm.generated_at == 50.0
        assert nm.version == stored.version

    def test_304_without_etag(self):
        stored = make_response()
        del stored.headers["ETag"]
        nm = make_not_modified(stored, at=1.0)
        assert nm.etag is None
