"""Tests for baseline fetchers and the cookie-jar wrapper."""

import pytest

from repro.baselines import CookieJarFetcher, NoCacheClient
from repro.http import Headers, Request, Status, URL

from tests.browser.conftest import CLIENT_ORIGIN, run_fetch


def get(path, headers=None):
    return Request.get(URL.parse(path), headers=Headers(headers or {}))


class TestNoCacheClient:
    def test_every_fetch_pays_full_latency(self, env, transport):
        client = NoCacheClient("client", transport)
        run_fetch(env, client.fetch(get("/page/1")))
        start = env.now
        response = run_fetch(env, client.fetch(get("/page/1")))
        assert response.served_by == "origin"
        assert env.now - start == pytest.approx(2 * CLIENT_ORIGIN)


class TestCookieJarFetcher:
    def test_attaches_cookie_for_logged_in_user(self, env, transport):
        captured = []
        original = transport.origin_server.handle

        def spy(request, now):
            captured.append(request.headers.get("Cookie"))
            return original(request, now)

        transport.origin_server.handle = spy
        client = CookieJarFetcher(
            NoCacheClient("client", transport), user_id="u42"
        )
        run_fetch(env, client.fetch(get("/page/1")))
        assert captured == ["session=u42"]

    def test_anonymous_user_sends_nothing(self, env, transport):
        captured = []
        original = transport.origin_server.handle

        def spy(request, now):
            captured.append(request.headers.get("Cookie"))
            return original(request, now)

        transport.origin_server.handle = spy
        client = CookieJarFetcher(
            NoCacheClient("client", transport), user_id=None
        )
        run_fetch(env, client.fetch(get("/page/1")))
        assert captured == [None]

    def test_existing_cookie_not_overwritten(self, env, transport):
        captured = []
        original = transport.origin_server.handle

        def spy(request, now):
            captured.append(request.headers.get("Cookie"))
            return original(request, now)

        transport.origin_server.handle = spy
        client = CookieJarFetcher(
            NoCacheClient("client", transport), user_id="u42"
        )
        run_fetch(
            env, client.fetch(get("/page/1", {"Cookie": "session=other"}))
        )
        assert captured == ["session=other"]

    def test_original_request_not_mutated(self, env, transport):
        client = CookieJarFetcher(
            NoCacheClient("client", transport), user_id="u42"
        )
        request = get("/page/1")
        run_fetch(env, client.fetch(request))
        assert "Cookie" not in request.headers

    def test_attribute_delegation(self, transport):
        inner = NoCacheClient("client", transport)
        wrapped = CookieJarFetcher(inner, user_id="u1")
        assert wrapped.node == "client"
        assert wrapped.transport is transport
        with pytest.raises(AttributeError):
            wrapped.nonexistent_attribute
