"""Reuse the browser test stack fixtures for baseline tests."""

from tests.browser.conftest import (  # noqa: F401 - fixture re-export
    cdn,
    env,
    server,
    site,
    topology,
    transport,
)
