"""Tests for the conversion model and A/B comparison."""

import pytest

from repro.harness import ConversionModel, RunResult, compare_scenarios
from repro.sim import MetricRegistry


def make_result(name, plts):
    metrics = MetricRegistry()
    result = RunResult(
        scenario_name=name, metrics=metrics, plt=metrics.histogram("plt")
    )
    result.plt.extend(plts)
    return result


class TestConversionModel:
    def test_base_rate_at_reference(self):
        model = ConversionModel(base_rate=0.03, reference_plt=1.0)
        assert model.conversion_probability(1.0) == pytest.approx(0.03)

    def test_faster_pages_convert_better(self):
        model = ConversionModel()
        fast = model.conversion_probability(0.5)
        slow = model.conversion_probability(4.0)
        assert fast > slow

    def test_probability_stays_in_unit_interval(self):
        model = ConversionModel(sensitivity=2.0)
        for plt in (0.0, 0.1, 1.0, 10.0, 100.0):
            assert 0.0 <= model.conversion_probability(plt) <= 1.0

    def test_one_second_costs_about_twenty_percent(self):
        model = ConversionModel()
        at_ref = model.conversion_probability(1.0)
        one_slower = model.conversion_probability(2.0)
        assert (at_ref - one_slower) / at_ref == pytest.approx(0.21, abs=0.05)

    def test_expected_rate(self):
        model = ConversionModel()
        assert model.expected_rate([]) == 0.0
        rate = model.expected_rate([1.0, 1.0])
        assert rate == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConversionModel(base_rate=0.0)
        with pytest.raises(ValueError):
            ConversionModel(sensitivity=-1.0)


class TestCompareScenarios:
    def test_faster_treatment_wins(self):
        control = make_result("classic-cdn", [2.0, 2.2, 1.8, 2.1])
        treatment = make_result("speed-kit", [0.9, 1.0, 1.1, 0.8])
        row = compare_scenarios(control, treatment, ConversionModel())
        assert row["plt_speedup"] > 1.5
        assert row["conversion_uplift_pct"] > 0
        assert row["control"] == "classic-cdn"

    def test_empty_variant_rejected(self):
        control = make_result("a", [1.0])
        empty = make_result("b", [])
        with pytest.raises(ValueError):
            compare_scenarios(control, empty, ConversionModel())
