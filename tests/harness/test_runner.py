"""End-to-end scenario replay tests — the whole system, together."""

import random

import pytest

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)


@pytest.fixture(scope="module")
def workload():
    catalog = generate_catalog(
        CatalogConfig(n_products=60), random.Random(0)
    )
    users = generate_users(
        UserPopulationConfig(n_users=20, consent_fraction=1.0),
        random.Random(1),
    )
    config = WorkloadConfig(
        duration=900.0,
        session_rate=0.08,
        mean_session_length=4.0,
        think_time_mean=10.0,
        write_rate=0.05,
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(2)
    )
    return catalog, users, trace


def run_scenario(workload, scenario, **kwargs):
    catalog, users, trace = workload
    spec = ScenarioSpec(scenario=scenario, **kwargs)
    return SimulationRunner(spec, catalog, users, trace).run()


@pytest.fixture(scope="module")
def no_cache(workload):
    return run_scenario(workload, Scenario.NO_CACHE)


@pytest.fixture(scope="module")
def browser_only(workload):
    return run_scenario(workload, Scenario.BROWSER_ONLY)


@pytest.fixture(scope="module")
def classic_cdn(workload):
    return run_scenario(workload, Scenario.CLASSIC_CDN)


@pytest.fixture(scope="module")
def speed_kit(workload):
    return run_scenario(workload, Scenario.SPEED_KIT)


class TestScenarioBasics:
    def test_all_page_views_executed(self, workload, no_cache):
        _, _, trace = workload
        assert no_cache.page_views == len(trace.page_views())

    def test_no_cache_serves_everything_from_origin(self, no_cache):
        assert no_cache.cache_hit_ratio() == 0.0
        assert set(no_cache.served_by_layer) == {"origin"}

    def test_browser_cache_improves_on_no_cache(
        self, no_cache, browser_only
    ):
        assert browser_only.cache_hit_ratio() > 0.2
        assert browser_only.plt.mean() < no_cache.plt.mean()

    def test_classic_cdn_improves_on_browser_only(
        self, browser_only, classic_cdn
    ):
        assert classic_cdn.plt.mean() < browser_only.plt.mean()
        assert "edge" in classic_cdn.served_by_layer

    def test_speed_kit_beats_classic_cdn(self, classic_cdn, speed_kit):
        assert speed_kit.plt.percentile(50) < classic_cdn.plt.percentile(50)
        assert speed_kit.cache_hit_ratio() > classic_cdn.cache_hit_ratio()

    def test_speed_kit_reduces_origin_load(self, classic_cdn, speed_kit):
        assert speed_kit.origin_requests < classic_cdn.origin_requests


class TestCoherence:
    def test_speed_kit_is_delta_atomic(self, speed_kit):
        assert speed_kit.reads_checked > 0
        assert speed_kit.delta_violations == 0

    def test_speed_kit_staleness_bounded(self, speed_kit):
        # Δ (60 s default) + purge latency + one transit.
        assert speed_kit.max_staleness <= 60.0 + 0.080 + 1.0

    def test_classic_cdn_can_serve_staler_data(
        self, classic_cdn, speed_kit
    ):
        # With 300 s TTLs and ongoing writes, the classic CDN's worst
        # staleness exceeds Speed Kit's Δ bound.
        if classic_cdn.stale_reads:
            assert classic_cdn.max_staleness >= speed_kit.max_staleness


class TestSpeedKitSpecifics:
    def test_sketch_traffic_accounted(self, speed_kit):
        assert speed_kit.sketch_fetches > 0
        assert speed_kit.sketch_bytes > 0

    def test_requests_were_scrubbed(self, speed_kit):
        assert speed_kit.requests_scrubbed > 0

    def test_sw_layer_appears(self, speed_kit):
        assert "sw" in speed_kit.served_by_layer

    def test_static_assets_hit_ratio_is_high(self, speed_kit):
        assert speed_kit.hit_ratio_for_kind("static") > 0.5

    def test_fragments_never_cached(self, speed_kit):
        assert speed_kit.hit_ratio_for_kind("fragment") == 0.0

    def test_summary_row_keys(self, speed_kit):
        row = speed_kit.summary_row()
        assert row["scenario"] == "speed-kit"
        assert row["violations"] == 0
        assert "plt_p50_ms" in row


class TestAblations:
    def test_purge_only_keeps_running(self, workload):
        result = run_scenario(workload, Scenario.SPEED_KIT_PURGE_ONLY)
        assert result.page_views > 0
        # Without a sketch, staleness is bounded by TTLs, not Δ: the
        # checker treats it as expiration-based (no violations).
        assert result.delta_violations == 0

    def test_sketch_only_keeps_coherence_bound(self, workload):
        result = run_scenario(workload, Scenario.SPEED_KIT_SKETCH_ONLY)
        assert result.delta_violations == 0

    def test_no_segments_breaks_personalization(self, workload, speed_kit):
        result = run_scenario(workload, Scenario.SPEED_KIT_NO_SEGMENTS)
        # Without segment rewriting, logged-in users receive anonymous
        # fallback content — fast, but wrong. Full Speed Kit stays
        # fully personalized.
        assert speed_kit.personalization_rate() == 1.0
        assert result.personalization_rate() < 0.5

    def test_classic_cdn_is_fully_personalized(self, classic_cdn):
        # The baseline is *correct* (identity-personalized renders) —
        # its problem is speed, not correctness.
        assert classic_cdn.personalization_rate() == 1.0

    def test_determinism_same_seed_same_results(self, workload, speed_kit):
        again = run_scenario(workload, Scenario.SPEED_KIT)
        assert sorted(again.plt.values) == sorted(speed_kit.plt.values)
        assert again.origin_requests == speed_kit.origin_requests
