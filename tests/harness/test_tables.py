"""Tests for text table rendering."""

from repro.harness import format_table


def test_empty_rows():
    assert "(no rows)" in format_table([])
    assert format_table([], title="T").startswith("T")


def test_basic_rendering():
    rows = [
        {"name": "a", "value": 1.5},
        {"name": "longer", "value": 22},
    ]
    text = format_table(rows, title="My Table")
    lines = text.splitlines()
    assert lines[0] == "My Table"
    assert "name" in lines[1] and "value" in lines[1]
    assert lines[2].startswith("-")
    assert "longer" in text


def test_numbers_right_aligned():
    rows = [{"n": 1}, {"n": 1000}]
    text = format_table(rows)
    data_lines = text.splitlines()[2:]
    assert data_lines[0].endswith("1")
    assert data_lines[1].endswith("1000")


def test_missing_values_dash():
    rows = [{"a": 1, "b": 2}, {"a": 3}]
    text = format_table(rows)
    assert "-" in text.splitlines()[-1]


def test_explicit_column_order():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b", "a"])
    header = text.splitlines()[0]
    assert header.index("b") < header.index("a")
