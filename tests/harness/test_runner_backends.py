"""End-to-end replay with each storage engine behind every tier."""

import random

import pytest

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.storage import BackendSpec
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)

BACKENDS = {
    "inmemory": BackendSpec(kind="inmemory"),
    "sharded": BackendSpec(kind="sharded", n_shards=4),
    "remote": BackendSpec(kind="remote", seed=1),
}


@pytest.fixture(scope="module")
def workload():
    catalog = generate_catalog(CatalogConfig(n_products=40), random.Random(0))
    users = generate_users(
        UserPopulationConfig(n_users=12, consent_fraction=1.0),
        random.Random(1),
    )
    config = WorkloadConfig(
        duration=600.0,
        session_rate=0.08,
        mean_session_length=4.0,
        think_time_mean=10.0,
        write_rate=0.05,
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(2)
    )
    return catalog, users, trace


def run_with(workload, backend, scenario=Scenario.SPEED_KIT):
    catalog, users, trace = workload
    spec = ScenarioSpec(scenario=scenario, backend=backend)
    return SimulationRunner(spec, catalog, users, trace).run()


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_speed_kit_runs_on_each_engine(workload, name):
    result = run_with(workload, BACKENDS[name])
    assert result.page_views > 0
    assert result.cache_hit_ratio() > 0
    assert result.delta_violations == 0


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_classic_cdn_runs_on_each_engine(workload, name):
    result = run_with(
        workload, BACKENDS[name], scenario=Scenario.CLASSIC_CDN
    )
    assert result.page_views > 0
    assert result.cache_hit_ratio() > 0


def test_engine_choice_preserves_caching_behaviour(workload):
    """Local engines are behaviourally identical: same hit counts.

    The sharded engine only changes *where* an entry lives, not what is
    cached — so hit ratios and origin load must match the classic
    engine exactly (no per-shard caps configured here).
    """
    inmemory = run_with(workload, BACKENDS["inmemory"])
    sharded = run_with(workload, BACKENDS["sharded"])
    assert inmemory.cache_hit_ratio() == pytest.approx(
        sharded.cache_hit_ratio()
    )
    assert inmemory.origin_requests == sharded.origin_requests


def test_remote_engine_slows_page_loads(workload):
    """Per-operation storage cost must surface in PLT."""
    local = run_with(workload, BACKENDS["inmemory"])
    remote = run_with(
        workload,
        # Exaggerated latencies so the ordering is decisive on a
        # small workload.
        BackendSpec(
            kind="remote", read_latency=0.02, write_latency=0.03, seed=1
        ),
    )
    assert remote.plt.percentile(50) > local.plt.percentile(50)
    # Cost does not change *what* gets cached.
    assert remote.origin_requests == local.origin_requests


def test_default_spec_matches_no_spec(workload):
    """backend=None and an explicit inmemory spec are the same stack."""
    plain = run_with(workload, None)
    explicit = run_with(workload, BACKENDS["inmemory"])
    assert plain.plt.percentile(50) == pytest.approx(
        explicit.plt.percentile(50)
    )
    assert plain.origin_requests == explicit.origin_requests
