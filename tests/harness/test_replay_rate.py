"""Rate-scaled replay: compressed time, identical cache dynamics.

The metamorphic property under test: replaying a trace whose
timestamps were divided by ``R`` with ``time_scale = 1/R`` (so the
Δ bound, TTLs, and the invalidation pipeline compress identically)
must reproduce the recorded run's workload-exact metrics. Verified at
rate 2 on speed-kit, where the unscaled infrastructure latencies
(network transit, origin service time) stay far enough from every
TTL/freshness boundary that the verdict stream is bit-identical.
"""

import random

import pytest

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.harness.scenarios import ScenarioSpec as Spec
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
    rescale_trace,
)

RATE = 2.0


@pytest.fixture(scope="module")
def workload():
    # Pinned to a configuration where rate-2 compression is verified
    # bit-exact (see module docstring): 30 products, 12 users, the
    # CLI's quick-run traffic rates, seed chain 5/6/7.
    catalog = generate_catalog(
        CatalogConfig(n_products=30), random.Random(5)
    )
    users = generate_users(
        UserPopulationConfig(n_users=12), random.Random(6)
    )
    config = WorkloadConfig(
        duration=900.0, session_rate=0.05, write_rate=0.05
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(7)
    )
    return catalog, users, trace


@pytest.fixture(scope="module")
def base_runner(workload):
    catalog, users, trace = workload
    runner = SimulationRunner(
        ScenarioSpec(scenario=Scenario.SPEED_KIT, seed=5),
        catalog,
        users,
        trace,
    )
    runner.run()
    return runner


@pytest.fixture(scope="module")
def compressed_runner(workload):
    catalog, users, trace = workload
    runner = SimulationRunner(
        ScenarioSpec(
            scenario=Scenario.SPEED_KIT, seed=5, time_scale=1.0 / RATE
        ),
        catalog,
        users,
        rescale_trace(trace, RATE),
    )
    runner.run()
    return runner


def test_compressed_replay_preserves_exact_metrics(
    base_runner, compressed_runner
):
    base = base_runner.result
    fast = compressed_runner.result
    assert fast.page_views == base.page_views
    assert fast.cache_hit_ratio() == base.cache_hit_ratio()
    assert fast.origin_requests == base.origin_requests
    assert fast.reads_checked == base.reads_checked
    assert fast.delta_violations == base.delta_violations == 0


def test_compressed_timeline_runs_at_double_speed(
    base_runner, compressed_runner
):
    """Each page load completes at (event time)/R plus its *unscaled*
    load latency: the recorded timeline compresses by R while the
    per-load PLT observations stay identical."""
    base = sorted(
        t for t, _ in base_runner.metrics.series("plt.timeline").points
    )
    fast = sorted(
        t for t, _ in compressed_runner.metrics.series(
            "plt.timeline"
        ).points
    )
    assert len(fast) == len(base)
    # Completion = start/R + load latency; starts compress exactly,
    # the latency tail does not (it is unscaled infrastructure time,
    # well under a second here), so each completion lands within that
    # slack of the compressed original and the span halves.
    for t_base, t_fast in zip(base, fast):
        assert t_fast == pytest.approx(t_base / RATE, abs=2.0)
    span_base = base[-1] - base[0]
    span_fast = fast[-1] - fast[0]
    assert span_fast == pytest.approx(span_base / RATE, rel=0.01)


def test_time_scaled_is_identity_at_one():
    spec = Spec(scenario=Scenario.SPEED_KIT)
    assert spec.time_scaled() is spec


def test_time_scaled_compresses_wall_time_gap_knobs():
    spec = Spec(
        scenario=Scenario.SPEED_KIT,
        delta=60.0,
        page_ttl=300.0,
        detection_latency=0.04,
        purge_latency=0.08,
        stale_if_error=30.0,
        outage=(100.0, 200.0),
        replication_delay=0.05,
        time_scale=0.5,
    )
    scaled = spec.time_scaled()
    assert scaled.delta == 30.0
    assert scaled.page_ttl == 150.0
    assert scaled.detection_latency == 0.02
    assert scaled.purge_latency == 0.04
    assert scaled.stale_if_error == 15.0
    assert scaled.outage == (50.0, 100.0)
    # Infrastructure speed is not the timeline: replication stays put.
    assert scaled.replication_delay == 0.05
    # Applied once: a second call is a no-op.
    assert scaled.time_scale == 1.0
    assert scaled.time_scaled() is scaled


def test_time_scaled_preserves_none_knobs():
    spec = Spec(scenario=Scenario.SPEED_KIT, time_scale=0.25)
    scaled = spec.time_scaled()
    assert scaled.stale_if_error is None
    assert scaled.outage is None
    assert scaled.delta == spec.delta * 0.25


def test_time_scaled_rejects_nonpositive():
    spec = Spec(scenario=Scenario.SPEED_KIT, time_scale=-1.0)
    with pytest.raises(ValueError, match="positive"):
        spec.time_scaled()


def test_runner_folds_time_scale_on_construction(workload):
    catalog, users, trace = workload
    runner = SimulationRunner(
        ScenarioSpec(
            scenario=Scenario.SPEED_KIT, delta=60.0, time_scale=0.5
        ),
        catalog,
        users,
        rescale_trace(trace, 2.0),
    )
    assert runner.spec.delta == 30.0
    assert runner.spec.time_scale == 1.0
