"""Tests for multi-seed replication."""

import pytest

from repro.harness import (
    MetricSummary,
    Scenario,
    ScenarioSpec,
    replicate,
)
from repro.workload import CatalogConfig, UserPopulationConfig, WorkloadConfig

SMALL = dict(
    catalog_config=CatalogConfig(n_products=20),
    population_config=UserPopulationConfig(n_users=8),
    workload_config=WorkloadConfig(duration=300.0, session_rate=0.1),
)


class TestMetricSummary:
    def test_mean_and_ci(self):
        summary = MetricSummary("m", values=[1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == 3.0
        assert summary.stddev == pytest.approx(1.5811, abs=1e-3)
        assert summary.ci95_half_width == pytest.approx(1.386, abs=1e-2)

    def test_single_value_has_no_spread(self):
        summary = MetricSummary("m", values=[7.0])
        assert summary.stddev == 0.0
        assert summary.ci95_half_width == 0.0

    def test_as_row_scaling(self):
        summary = MetricSummary("plt_p50", values=[0.1, 0.2])
        row = summary.as_row(scale=1000.0, digits=1)
        assert row["plt_p50_mean"] == 150.0
        assert "plt_p50_ci95" in row


class TestReplicate:
    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(
                ScenarioSpec(scenario=Scenario.SPEED_KIT), n_seeds=0
            )

    def test_runs_and_aggregates(self):
        result = replicate(
            ScenarioSpec(scenario=Scenario.SPEED_KIT), n_seeds=3, **SMALL
        )
        assert len(result.runs) == 3
        assert result.metrics["plt_p50"].n == 3
        assert result.total_violations == 0
        row = result.summary_row()
        assert row["scenario"] == "speed-kit"
        assert row["plt_p50_mean"] > 0
        assert row["plt_p50_ci95"] >= 0

    def test_seeds_actually_vary_the_workload(self):
        result = replicate(
            ScenarioSpec(scenario=Scenario.NO_CACHE), n_seeds=3, **SMALL
        )
        medians = result.metrics["plt_p50"].values
        assert len(set(medians)) > 1  # different seeds, different draws

    def test_replication_is_deterministic(self):
        spec = ScenarioSpec(scenario=Scenario.CLASSIC_CDN)
        a = replicate(spec, n_seeds=2, **SMALL)
        b = replicate(spec, n_seeds=2, **SMALL)
        assert a.metrics["plt_p50"].values == b.metrics["plt_p50"].values
