"""Tests for the markdown report generator."""

import random

import pytest

from repro.harness import (
    RunResult,
    Scenario,
    ScenarioSpec,
    SimulationRunner,
    render_report,
)
from repro.sim import MetricRegistry
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)


@pytest.fixture(scope="module")
def small_run():
    catalog = generate_catalog(CatalogConfig(n_products=20), random.Random(0))
    users = generate_users(UserPopulationConfig(n_users=8), random.Random(1))
    config = WorkloadConfig(duration=300.0, session_rate=0.1)
    trace = WorkloadGenerator(catalog, users, config).generate(random.Random(2))
    results = [
        SimulationRunner(
            ScenarioSpec(scenario=scenario), catalog, users, trace
        ).run()
        for scenario in (Scenario.CLASSIC_CDN, Scenario.SPEED_KIT)
    ]
    return trace, results


def test_report_sections(small_run):
    trace, results = small_run
    report = render_report(results, trace=trace)
    for heading in (
        "# Speed Kit reproduction report",
        "## Workload",
        "## Scenario comparison",
        "## Cache hit ratio by content type",
        "## Coherence and personalization",
        "## A/B analysis",
        "## Page load time distributions",
    ):
        assert heading in report
    assert "classic-cdn" in report
    assert "speed-kit" in report


def test_report_without_trace(small_run):
    _, results = small_run
    report = render_report(results)
    assert "## Workload" not in report
    assert "## Scenario comparison" in report


def test_report_custom_title(small_run):
    _, results = small_run
    report = render_report(results, title="My Eval")
    assert report.startswith("# My Eval")


def test_single_result_skips_ab(small_run):
    _, results = small_run
    report = render_report(results[:1])
    assert "## A/B analysis" not in report


def test_empty_results_rejected():
    with pytest.raises(ValueError):
        render_report([])


def test_empty_plt_handled():
    metrics = MetricRegistry()
    result = RunResult(
        scenario_name="empty", metrics=metrics, plt=metrics.histogram("plt")
    )
    report = render_report([result])
    assert "## Page load time distributions" not in report
