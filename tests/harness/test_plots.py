"""Tests for the text plotting helpers."""

import pytest

from repro.harness import cdf_table, sparkline, text_histogram


class TestTextHistogram:
    def test_empty(self):
        assert "(no data)" in text_histogram([])
        assert text_histogram([], title="T").startswith("T")

    def test_counts_sum_to_input(self):
        values = [1.0, 1.1, 1.2, 5.0, 5.1, 9.9]
        text = text_histogram(values, bins=3)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()]
        assert sum(counts) == len(values)

    def test_bar_lengths_proportional(self):
        text = text_histogram([1.0] * 10 + [9.0], bins=2, width=20)
        lines = text.splitlines()
        big = lines[0].count("#")
        small = lines[-1].count("#")
        assert big > small >= 1

    def test_constant_values_do_not_crash(self):
        text = text_histogram([5.0, 5.0, 5.0], bins=4)
        assert "3" in text

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            text_histogram([1.0], bins=0)

    def test_title_and_unit(self):
        text = text_histogram([1.0, 2.0], title="PLT", unit="ms")
        assert text.startswith("PLT")
        assert "ms" in text


class TestCdfTable:
    def test_percentiles_scale_and_label(self):
        rows = cdf_table(
            {"fast": [0.1, 0.2, 0.3], "slow": [1.0, 2.0, 3.0]},
            percentiles=(50,),
            scale=1000.0,
            unit="ms",
        )
        by_name = {row["series"]: row for row in rows}
        assert by_name["fast"]["p50_ms"] == 200.0
        assert by_name["slow"]["p50_ms"] == 2000.0

    def test_empty_series_skipped(self):
        rows = cdf_table({"empty": [], "full": [1.0]})
        assert [row["series"] for row in rows] == ["full"]

    def test_single_value_series(self):
        rows = cdf_table({"one": [7.0]}, percentiles=(1, 99))
        assert rows[0]["p1"] == 7.0
        assert rows[0]["p99"] == 7.0


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_capped_at_width(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) == 50

    def test_short_input_kept(self):
        assert len(sparkline([1, 2, 3], width=50)) == 3

    def test_monotone_input_monotone_marks(self):
        marks = " .:-=+*#%@"
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        levels = [marks.index(ch) for ch in line]
        assert levels == sorted(levels)

    def test_constant_input(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1
