"""Harness coverage for the extended scenario features."""

import random

import pytest

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)


def build_workload(consent_fraction=1.0, seed=0):
    catalog = generate_catalog(
        CatalogConfig(n_products=40), random.Random(seed)
    )
    users = generate_users(
        UserPopulationConfig(
            n_users=16, consent_fraction=consent_fraction
        ),
        random.Random(seed + 1),
    )
    config = WorkloadConfig(
        duration=600.0, session_rate=0.1, write_rate=0.05
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(seed + 2)
    )
    return catalog, users, trace


def run(workload, **spec_kwargs):
    catalog, users, trace = workload
    spec = ScenarioSpec(**spec_kwargs)
    return SimulationRunner(spec, catalog, users, trace).run()


class TestMultiPop:
    def test_two_pops_serve_and_stay_coherent(self):
        workload = build_workload()
        result = run(
            workload,
            scenario=Scenario.SPEED_KIT,
            pop_names=("edge-1", "edge-2"),
        )
        assert result.page_views > 0
        assert result.delta_violations == 0
        # Edge traffic exists (clients picked their nearest PoP).
        assert result.served_by_layer.get("edge", 0) > 0


class TestConsentMix:
    def test_partial_consent_splits_coverage(self):
        workload = build_workload(consent_fraction=0.5)
        result = run(workload, scenario=Scenario.SPEED_KIT)
        # Both populations executed; violations only judged where the
        # protocol promises the bound.
        assert result.delta_violations == 0
        assert result.reads_checked > 0

    def test_zero_consent_degrades_to_browser_only(self):
        workload = build_workload(consent_fraction=0.0)
        speed_kit = run(workload, scenario=Scenario.SPEED_KIT)
        browser = run(workload, scenario=Scenario.BROWSER_ONLY)
        # Nobody consented: the Speed Kit deployment behaves exactly
        # like plain browsers (identical PLT distribution).
        assert sorted(speed_kit.plt.values) == sorted(browser.plt.values)
        assert speed_kit.sketch_fetches == 0
        assert speed_kit.requests_scrubbed == 0


class TestSpecFeatures:
    def test_outage_through_spec(self):
        workload = build_workload()
        clean = run(workload, scenario=Scenario.SPEED_KIT)
        downed = run(
            workload, scenario=Scenario.SPEED_KIT, outage=(200.0, 300.0)
        )
        assert clean.failed_responses == 0
        assert downed.failed_responses > 0
        assert downed.error_rate() > 0

    def test_swr_through_spec(self):
        workload = build_workload()
        swr = run(
            workload,
            scenario=Scenario.SPEED_KIT,
            stale_while_revalidate=True,
        )
        assert swr.delta_violations == 0

    def test_adaptive_ttl_through_spec(self):
        workload = build_workload()
        adaptive = run(
            workload, scenario=Scenario.SPEED_KIT, adaptive_ttl=True
        )
        assert adaptive.delta_violations == 0
        assert adaptive.page_views > 0

    def test_custom_label(self):
        workload = build_workload()
        result = run(
            workload, scenario=Scenario.SPEED_KIT, label="my-variant"
        )
        assert result.scenario_name == "my-variant"
