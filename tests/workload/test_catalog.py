"""Tests for catalog generation."""

import random
from collections import Counter

import pytest

from repro.workload import Catalog, CatalogConfig, generate_catalog


@pytest.fixture
def catalog():
    return generate_catalog(CatalogConfig(n_products=100), random.Random(0))


def test_config_validation():
    with pytest.raises(ValueError):
        CatalogConfig(n_products=0)
    with pytest.raises(ValueError):
        CatalogConfig(zipf_s=-1.0)


def test_generation_is_deterministic():
    a = generate_catalog(CatalogConfig(n_products=50), random.Random(7))
    b = generate_catalog(CatalogConfig(n_products=50), random.Random(7))
    assert a.products == b.products


def test_product_count_and_ids(catalog):
    assert len(catalog) == 100
    assert catalog.products[0].product_id == "p0"
    assert catalog.product("p42").product_id == "p42"


def test_prices_within_bounds(catalog):
    config = catalog.config
    for product in catalog.products:
        assert config.min_price <= product.price <= config.max_price


def test_all_categories_used(catalog):
    categories = {p.category for p in catalog.products}
    assert categories == set(catalog.config.categories)


def test_zipf_sampling_prefers_low_ranks(catalog):
    rng = random.Random(1)
    counts = Counter(
        catalog.sample_product(rng).product_id for _ in range(5000)
    )
    # The most popular product is sampled far more than a mid-rank one.
    assert counts["p0"] > counts.get("p50", 0) * 3


def test_uniform_when_zipf_zero():
    catalog = generate_catalog(
        CatalogConfig(n_products=10, zipf_s=0.0), random.Random(0)
    )
    rng = random.Random(2)
    counts = Counter(
        catalog.sample_product(rng).product_id for _ in range(10_000)
    )
    assert max(counts.values()) < 2 * min(counts.values())


def test_by_category_partitions(catalog):
    grouped = catalog.by_category()
    assert sum(len(products) for products in grouped.values()) == len(catalog)
