"""Tests for the trace-ingestion harness (importers, rescale, worlds)."""

import io
import json
import random
from pathlib import Path

import pytest

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadTrace,
    WorldSpec,
    dump_trace,
    import_access_log,
    load_trace,
    rescale_trace,
    validate_trace_world,
)
from repro.workload.trace import (
    AccessUser,
    CartAdd,
    EraseUser,
    PageView,
    ProductUpdate,
)

FIXTURES = Path(__file__).parent / "fixtures"
GOLDENS = Path(__file__).parent / "goldens"


@pytest.fixture
def world():
    return WorldSpec(
        catalog=CatalogConfig(n_products=20),
        users=UserPopulationConfig(n_users=10),
        seed=3,
        catalog_seed=3,
        users_seed=4,
    )


@pytest.fixture
def built(world):
    return world.build()


# -- WorldSpec ---------------------------------------------------------------


def test_world_spec_round_trips_through_dict(world):
    restored = WorldSpec.from_dict(
        json.loads(json.dumps(world.to_dict()))
    )
    assert restored == world
    catalog_a, users_a = world.build()
    catalog_b, users_b = restored.build()
    assert catalog_a.products == catalog_b.products
    assert users_a.users == users_b.users


def test_world_spec_build_is_deterministic(world):
    catalog_a, users_a = world.build()
    catalog_b, users_b = world.build()
    assert catalog_a.products == catalog_b.products
    assert users_a.users == users_b.users


def test_world_spec_rejects_malformed_dict():
    with pytest.raises(ValueError, match="malformed world spec"):
        WorldSpec.from_dict({"catalog": {}})


# -- importers ---------------------------------------------------------------


def test_import_csv_fixture_maps_every_kind(built):
    catalog, users = built
    trace = import_access_log(
        FIXTURES / "sample_access_log.csv", catalog, users
    )
    kinds = {type(event) for event in trace.events}
    assert {PageView, CartAdd, EraseUser, AccessUser} <= kinds
    page_kinds = {e.page_kind for e in trace.page_views()}
    assert page_kinds == {"home", "category", "product"}
    validate_trace_world(trace, catalog, users)


def test_import_is_deterministic(built):
    catalog, users = built
    one = import_access_log(
        FIXTURES / "sample_access_log.csv", catalog, users
    )
    two = import_access_log(
        FIXTURES / "sample_access_log.csv", catalog, users
    )
    assert one.events == two.events
    assert one.duration == two.duration


def test_import_jsonl_fixture_with_aliased_fields(built):
    catalog, users = built
    trace = import_access_log(
        FIXTURES / "sample_access_log.jsonl", catalog, users
    )
    assert len(trace) == 51
    assert trace.events[0].at == 0.0  # epoch stamps normalized to t=0
    validate_trace_world(trace, catalog, users)


def test_import_normalizes_t0_and_orders_events(built):
    catalog, users = built
    log = io.StringIO(
        "timestamp,client,url,method\n"
        "100.5,c1,/shoes,GET\n"
        "90.0,c2,/,GET\n"
    )
    trace = import_access_log(log, catalog, users)
    assert [event.at for event in trace.events] == [0.0, 10.5]
    assert trace.duration == 10.5


def test_import_same_client_maps_to_same_user(built):
    catalog, users = built
    log = io.StringIO(
        "timestamp,client,url,method\n"
        "1,alice,/,GET\n"
        "2,alice,/shoes,GET\n"
        "3,bob,/,GET\n"
    )
    trace = import_access_log(log, catalog, users)
    first, second, third = trace.events
    assert first.user_id == second.user_id
    assert {first.user_id, third.user_id} <= {
        user.user_id for user in users.users
    }


def test_import_same_url_maps_to_same_product(built):
    catalog, users = built
    log = io.StringIO(
        "timestamp,client,url,method\n"
        "1,a,/product/42,GET\n"
        "2,b,/product/42?utm=x,GET\n"
    )
    trace = import_access_log(log, catalog, users)
    assert trace.events[0].target == trace.events[1].target
    assert trace.events[0].page_kind == "product"


def test_import_headerless_csv(built):
    catalog, users = built
    trace = import_access_log(
        io.StringIO("5.0,c1,/shoes,GET\n"), catalog, users, fmt="csv"
    )
    assert trace.events[0].page_kind == "category"
    assert trace.events[0].target == "shoes"


def test_import_write_methods_become_cart_adds(built):
    catalog, users = built
    trace = import_access_log(
        io.StringIO("timestamp,client,url,method\n1,c,/product/7,PUT\n"),
        catalog,
        users,
    )
    (event,) = trace.events
    assert isinstance(event, CartAdd)
    assert event.product_id in {p.product_id for p in catalog.products}


def test_import_gdpr_paths(built):
    catalog, users = built
    log = io.StringIO(
        "timestamp,client,url,method\n"
        "1,c,/gdpr/access,GET\n"
        "2,c,/gdpr/erase,POST\n"
        "3,c,/anything,DELETE\n"
    )
    trace = import_access_log(log, catalog, users)
    assert isinstance(trace.events[0], AccessUser)
    assert isinstance(trace.events[1], EraseUser)
    assert isinstance(trace.events[2], EraseUser)


def test_import_rejects_unknown_method_with_line(built):
    catalog, users = built
    log = io.StringIO(
        "timestamp,client,url,method\n1,c,/,GET\n2,c,/,TRACE\n"
    )
    with pytest.raises(ValueError, match=r"line 3: unsupported method"):
        import_access_log(log, catalog, users)


def test_import_rejects_missing_field_with_line(built):
    catalog, users = built
    log = io.StringIO('{"ts": 1, "path": "/"}\n')
    with pytest.raises(ValueError, match=r"line 1: .*no 'client'"):
        import_access_log(log, catalog, users, fmt="jsonl")


def test_import_rejects_bad_timestamp_with_line(built):
    catalog, users = built
    log = io.StringIO(
        "timestamp,client,url,method\nyesterday,c,/,GET\n"
    )
    with pytest.raises(ValueError, match=r"line 2: unparseable timestamp"):
        import_access_log(log, catalog, users)


def test_import_empty_log_rejected(built):
    catalog, users = built
    with pytest.raises(ValueError, match="no events"):
        import_access_log(
            io.StringIO("timestamp,client,url,method\n"), catalog, users
        )


def test_import_stamps_world_provenance(built, world):
    catalog, users = built
    trace = import_access_log(
        FIXTURES / "sample_access_log.csv", catalog, users, world=world
    )
    assert trace.world is not None
    assert trace.world.source.startswith("imported:")
    rebuilt_catalog, rebuilt_users = trace.world.build()
    assert rebuilt_catalog.products == catalog.products
    assert rebuilt_users.users == users.users


def test_imported_trace_round_trips_as_v2(built, world, tmp_path):
    catalog, users = built
    trace = import_access_log(
        FIXTURES / "sample_access_log.csv", catalog, users, world=world
    )
    path = tmp_path / "imported.jsonl"
    dump_trace(trace, path)
    restored = load_trace(path)
    assert restored.events == trace.events
    assert restored.world == trace.world


# -- rescale_trace -----------------------------------------------------------


def test_rescale_divides_timestamps_and_duration(built, world):
    catalog, users = built
    trace = WorkloadTrace(
        events=[
            PageView(at=10.0, user_id="u1", page_kind="home", target=""),
            CartAdd(at=30.0, user_id="u1", product_id="p1"),
        ],
        duration=60.0,
        world=world,
    )
    scaled = rescale_trace(trace, 4.0)
    assert [event.at for event in scaled.events] == [2.5, 7.5]
    assert scaled.duration == 15.0
    assert scaled.world is trace.world
    # Identity-preserving: same kinds, same payloads.
    assert scaled.events[1].product_id == "p1"


def test_rescale_rate_one_is_identity():
    trace = WorkloadTrace(duration=1.0)
    assert rescale_trace(trace, 1.0) is trace


def test_rescale_rejects_nonpositive_rate():
    with pytest.raises(ValueError, match="positive"):
        rescale_trace(WorkloadTrace(), 0.0)


# -- validate_trace_world ----------------------------------------------------


def test_validate_accepts_matching_world(built):
    catalog, users = built
    config = WorkloadConfig(duration=300.0, session_rate=0.1)
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(5)
    )
    validate_trace_world(trace, catalog, users)  # does not raise


def test_validate_rejects_unknown_user(built):
    catalog, users = built
    trace = WorkloadTrace(
        events=[
            PageView(at=1.0, user_id="u999", page_kind="home", target="")
        ],
        duration=10.0,
    )
    with pytest.raises(ValueError, match=r"unknown user 'u999'") as err:
        validate_trace_world(trace, catalog, users)
    assert "re-record" in str(err.value)


def test_validate_rejects_unknown_product_and_category(built):
    catalog, users = built
    trace = WorkloadTrace(
        events=[
            ProductUpdate(at=1.0, product_id="p999", changes=()),
            PageView(
                at=2.0, user_id="u0", page_kind="category", target="hats"
            ),
        ],
        duration=10.0,
    )
    with pytest.raises(ValueError) as err:
        validate_trace_world(trace, catalog, users)
    message = str(err.value)
    assert "unknown product 'p999'" in message
    assert "unknown category 'hats'" in message


def test_validate_caps_reported_mismatches(built):
    catalog, users = built
    trace = WorkloadTrace(
        events=[
            PageView(
                at=float(i), user_id=f"u{i + 100}", page_kind="home",
                target="",
            )
            for i in range(20)
        ],
        duration=30.0,
    )
    with pytest.raises(ValueError, match="suppressed"):
        validate_trace_world(trace, catalog, users)


# -- trace.validate fixes ----------------------------------------------------


def test_validate_allows_pre_t0_events():
    trace = WorkloadTrace(
        events=[
            PageView(at=-5.0, user_id="u0", page_kind="home", target=""),
            PageView(at=1.0, user_id="u0", page_kind="home", target=""),
        ],
        duration=10.0,
    )
    trace.validate()  # must not raise: no implicit t=0 floor


def test_validate_rejects_negative_duration():
    with pytest.raises(ValueError, match="negative duration"):
        WorkloadTrace(duration=-1.0).validate()


def test_validate_still_rejects_disorder():
    trace = WorkloadTrace(
        events=[
            PageView(at=5.0, user_id="u0", page_kind="home", target=""),
            PageView(at=4.0, user_id="u0", page_kind="home", target=""),
        ],
        duration=10.0,
    )
    with pytest.raises(ValueError, match="not time-ordered"):
        trace.validate()


# -- per-trace golden metrics ------------------------------------------------


def test_imported_fixture_replay_matches_golden(built, request):
    """Replay determinism lock: the committed sample log, replayed
    under a pinned scenario, must reproduce the committed metrics
    exactly (regenerate with --update-goldens)."""
    catalog, users = built
    trace = import_access_log(
        FIXTURES / "sample_access_log.csv", catalog, users
    )
    spec = ScenarioSpec(scenario=Scenario.SPEED_KIT, seed=3)
    result = SimulationRunner(spec, catalog, users, trace).run()
    metrics = {
        "events": len(trace),
        "page_views": result.page_views,
        "cache_hit_ratio": result.cache_hit_ratio(),
        "origin_requests": result.origin_requests,
        "reads_checked": result.reads_checked,
        "delta_violations": result.delta_violations,
        "erasures": result.erasures,
        "accesses": result.accesses,
        "plt_p50": result.plt.percentile(50),
    }
    path = GOLDENS / "sample_import_metrics.json"
    if request.config.getoption("--update-goldens"):
        path.write_text(json.dumps(metrics, indent=2) + "\n")
        pytest.skip(f"updated golden {path.name}")
    assert path.exists(), (
        f"missing golden {path}; generate it with --update-goldens"
    )
    golden = json.loads(path.read_text())
    assert metrics == golden
