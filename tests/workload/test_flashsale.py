"""Tests for the flash-sale workload composition."""

import random

import pytest

from repro.workload import (
    CatalogConfig,
    FlashSaleConfig,
    UserPopulationConfig,
    WorkloadConfig,
    generate_catalog,
    generate_users,
    make_flash_sale_trace,
)


@pytest.fixture
def parts():
    catalog = generate_catalog(CatalogConfig(n_products=60), random.Random(0))
    users = generate_users(UserPopulationConfig(n_users=20), random.Random(1))
    workload = WorkloadConfig(duration=2400.0, session_rate=0.1)
    return catalog, users, workload


def make(parts, **kwargs):
    catalog, users, workload = parts
    sale = FlashSaleConfig(**kwargs)
    return sale, make_flash_sale_trace(
        catalog, users, workload, sale, random.Random(2)
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlashSaleConfig(start=100.0, end=100.0)
        with pytest.raises(ValueError):
            FlashSaleConfig(discount=0.0)
        with pytest.raises(ValueError):
            FlashSaleConfig(spike_rate=-1.0)

    def test_phase_of(self):
        sale = FlashSaleConfig(start=100.0, end=200.0)
        assert sale.phase_of(50.0) == "before"
        assert sale.phase_of(100.0) == "during"
        assert sale.phase_of(199.9) == "during"
        assert sale.phase_of(200.0) == "after"

    def test_sale_must_fit_in_trace(self, parts):
        with pytest.raises(ValueError, match="sale ends"):
            make(parts, start=2000.0, end=3000.0)

    def test_unknown_category_rejected(self, parts):
        with pytest.raises(ValueError, match="no products"):
            make(parts, category="unicorns")


class TestComposition:
    def test_trace_is_valid_and_ordered(self, parts):
        _, trace = make(parts)
        trace.validate()

    def test_write_bursts_at_boundaries(self, parts):
        catalog, _, _ = parts
        sale, trace = make(parts)
        sale_count = sum(
            1 for p in catalog.products if p.category == "sale"
        )
        at_start = [
            u for u in trace.product_updates() if u.at == sale.start
        ]
        at_end = [u for u in trace.product_updates() if u.at == sale.end]
        assert len(at_start) == sale_count
        assert len(at_end) == sale_count
        # Prices discounted at start, restored at end.
        product = catalog.product(at_start[0].product_id)
        assert at_start[0].changes_dict["price"] == pytest.approx(
            round(product.price * sale.discount, 2)
        )

    def test_traffic_spike_inside_window(self, parts):
        sale, trace = make(parts, spike_rate=2.0)
        views = trace.page_views()
        during = [v for v in views if sale.start <= v.at < sale.end]
        window = sale.end - sale.start
        before = [v for v in views if v.at < sale.start]
        rate_during = len(during) / window
        rate_before = len(before) / sale.start
        assert rate_during > 2 * rate_before

    def test_spike_views_target_sale_content(self, parts):
        catalog, _, _ = parts
        sale, trace = make(parts, spike_rate=2.0)
        during = [
            v
            for v in trace.page_views()
            if sale.start <= v.at < sale.end
        ]
        sale_ids = {
            p.product_id for p in catalog.products if p.category == "sale"
        }
        sale_related = [
            v
            for v in during
            if v.target == "sale" or v.target in sale_ids
        ]
        assert len(sale_related) > len(during) / 2

    def test_deterministic(self, parts):
        _, a = make(parts)
        _, b = make(parts)
        assert a.events == b.events
