"""Tests for page composition and the site builder."""

import json
import random

import pytest

from repro.http import Request, Status, URL
from repro.origin import OriginServer
from repro.workload import (
    CatalogConfig,
    PageBuilder,
    build_ecommerce_site,
    generate_catalog,
)


@pytest.fixture
def catalog():
    return generate_catalog(CatalogConfig(n_products=20), random.Random(0))


@pytest.fixture
def server(catalog):
    return OriginServer(build_ecommerce_site(catalog))


def get(server, path, now=0.0):
    return server.handle(Request.get(URL.parse(path)), now)


class TestPageBuilder:
    def test_home_page_shape(self):
        spec = PageBuilder().home()
        assert spec.html.path == "/"
        paths = [r.url.path for r in spec.resources]
        assert "/static/app.js" in paths
        assert "/api/blocks/cart" in paths
        assert "/api/recommendations" in paths

    def test_product_page_has_image_and_two_waves(self):
        spec = PageBuilder().product("p3")
        assert spec.html.path == "/product/p3"
        waves = spec.waves()
        assert len(waves) == 2
        wave1_paths = [r.url.path for r in waves[0]]
        assert "/static/img/p3.jpg" in wave1_paths

    def test_for_view_dispatch(self):
        builder = PageBuilder()
        assert builder.for_view("home", "").name == "home"
        assert builder.for_view("category", "shoes").name == "category:shoes"
        assert builder.for_view("product", "p1").name == "product:p1"
        with pytest.raises(ValueError):
            builder.for_view("mystery", "")


class TestSiteBuilder:
    def test_every_page_resource_is_servable(self, server):
        builder = PageBuilder()
        specs = [
            builder.home(),
            builder.category("shoes"),
            builder.product("p3"),
        ]
        for spec in specs:
            urls = [spec.html] + [r.url for r in spec.resources]
            for url in urls:
                response = server.handle(Request.get(url), 0.0)
                assert response.status == Status.OK, f"{url} failed"

    def test_category_page_lists_matching_products(self, server, catalog):
        response = get(server, "/category/shoes")
        body = json.loads(response.body)
        listed = {item["id"] for item in body["results"]}
        expected = {
            p.product_id for p in catalog.products if p.category == "shoes"
        }
        assert listed == expected

    def test_product_api(self, server, catalog):
        response = get(server, "/api/products/p5")
        body = json.loads(response.body)
        assert body["docs"]["products/p5"]["price"] == (
            catalog.product("p5").price
        )

    def test_product_image_is_static(self, server):
        response = get(server, "/static/img/p3.jpg")
        assert response.cache_control.immutable

    def test_checkout_is_user_personalized(self, server):
        response = server.handle(
            Request.get(
                URL.parse("/checkout"),
            ).with_header("Cookie", "session=u1"),
            0.0,
        )
        assert response.cache_control.no_store

    def test_price_update_invalidates_category_listing(self, server):
        first = get(server, "/category/shoes")
        body = json.loads(first.body)
        some_id = body["results"][0]["id"]
        server.update("products", some_id, {"price": 1.23}, at=5.0)
        second = get(server, "/category/shoes", now=6.0)
        assert second.version == first.version + 1
