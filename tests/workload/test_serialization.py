"""Tests for trace serialization."""

import io
import json
import random

import pytest

from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    dump_trace,
    generate_catalog,
    generate_users,
    load_trace,
)
from repro.workload.trace import CartAdd, PageView, ProductUpdate, WorkloadTrace


@pytest.fixture
def trace():
    catalog = generate_catalog(CatalogConfig(n_products=20), random.Random(0))
    users = generate_users(UserPopulationConfig(n_users=10), random.Random(1))
    config = WorkloadConfig(duration=600.0, write_rate=0.05, cart_add_prob=0.5)
    return WorkloadGenerator(catalog, users, config).generate(random.Random(2))


def round_trip(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    buffer.seek(0)
    return load_trace(buffer)


def test_round_trip_preserves_everything(trace):
    restored = round_trip(trace)
    assert restored.duration == trace.duration
    assert restored.events == trace.events


def test_round_trip_via_file(trace, tmp_path):
    path = tmp_path / "trace.jsonl"
    dump_trace(trace, path)
    restored = load_trace(path)
    assert restored.events == trace.events


def test_each_event_kind_round_trips():
    trace = WorkloadTrace(duration=100.0)
    trace.events = [
        PageView(at=1.0, user_id="u1", page_kind="home", target=""),
        ProductUpdate(at=2.0, product_id="p1", changes=(("price", 9.5),)),
        CartAdd(at=3.0, user_id="u1", product_id="p1"),
    ]
    restored = round_trip(trace)
    assert isinstance(restored.events[0], PageView)
    assert isinstance(restored.events[1], ProductUpdate)
    assert restored.events[1].changes_dict == {"price": 9.5}
    assert isinstance(restored.events[2], CartAdd)


def test_empty_file_rejected():
    with pytest.raises(ValueError, match="empty"):
        load_trace(io.StringIO(""))


def test_wrong_format_rejected():
    buffer = io.StringIO(json.dumps({"format": "something-else"}) + "\n")
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(buffer)


def test_wrong_version_rejected():
    header = {"format": "repro-trace", "version": 999, "duration": 1.0}
    buffer = io.StringIO(json.dumps(header) + "\n")
    with pytest.raises(ValueError, match="version"):
        load_trace(buffer)


def test_truncated_trace_rejected(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    lines = buffer.getvalue().splitlines()
    truncated = io.StringIO("\n".join(lines[:-3]) + "\n")
    with pytest.raises(ValueError, match="truncated"):
        load_trace(truncated)


def test_unknown_event_kind_rejected():
    header = {
        "format": "repro-trace",
        "version": 1,
        "duration": 10.0,
        "events": 1,
    }
    body = {"kind": "mystery", "at": 1.0}
    buffer = io.StringIO(
        json.dumps(header) + "\n" + json.dumps(body) + "\n"
    )
    with pytest.raises(ValueError, match="unknown event kind"):
        load_trace(buffer)
