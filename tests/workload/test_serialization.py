"""Tests for trace serialization."""

import io
import json
import random

import pytest

from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    WorldSpec,
    dump_trace,
    generate_catalog,
    generate_users,
    load_trace,
)
from repro.workload.serialization import FORMAT_VERSION
from repro.workload.trace import CartAdd, PageView, ProductUpdate, WorkloadTrace


@pytest.fixture
def trace():
    catalog = generate_catalog(CatalogConfig(n_products=20), random.Random(0))
    users = generate_users(UserPopulationConfig(n_users=10), random.Random(1))
    config = WorkloadConfig(duration=600.0, write_rate=0.05, cart_add_prob=0.5)
    return WorkloadGenerator(catalog, users, config).generate(random.Random(2))


def round_trip(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    buffer.seek(0)
    return load_trace(buffer)


def test_round_trip_preserves_everything(trace):
    restored = round_trip(trace)
    assert restored.duration == trace.duration
    assert restored.events == trace.events


def test_round_trip_via_file(trace, tmp_path):
    path = tmp_path / "trace.jsonl"
    dump_trace(trace, path)
    restored = load_trace(path)
    assert restored.events == trace.events


def test_each_event_kind_round_trips():
    trace = WorkloadTrace(duration=100.0)
    trace.events = [
        PageView(at=1.0, user_id="u1", page_kind="home", target=""),
        ProductUpdate(at=2.0, product_id="p1", changes=(("price", 9.5),)),
        CartAdd(at=3.0, user_id="u1", product_id="p1"),
    ]
    restored = round_trip(trace)
    assert isinstance(restored.events[0], PageView)
    assert isinstance(restored.events[1], ProductUpdate)
    assert restored.events[1].changes_dict == {"price": 9.5}
    assert isinstance(restored.events[2], CartAdd)


def test_empty_file_rejected():
    with pytest.raises(ValueError, match="empty"):
        load_trace(io.StringIO(""))


def test_wrong_format_rejected():
    buffer = io.StringIO(json.dumps({"format": "something-else"}) + "\n")
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(buffer)


def test_wrong_version_rejected():
    header = {"format": "repro-trace", "version": 999, "duration": 1.0}
    buffer = io.StringIO(json.dumps(header) + "\n")
    with pytest.raises(ValueError, match="version"):
        load_trace(buffer)


def test_truncated_trace_rejected(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    lines = buffer.getvalue().splitlines()
    truncated = io.StringIO("\n".join(lines[:-3]) + "\n")
    with pytest.raises(ValueError, match="truncated"):
        load_trace(truncated)


def test_v2_header_embeds_world_and_round_trips(trace):
    world = WorldSpec(
        catalog=CatalogConfig(n_products=20),
        users=UserPopulationConfig(n_users=10),
        seed=7,
        catalog_seed=7,
        users_seed=8,
    )
    trace.world = world
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    buffer.seek(0)
    header = json.loads(buffer.readline())
    assert header["version"] == FORMAT_VERSION == 2
    assert header["world"]["seed"] == 7
    buffer.seek(0)
    restored = load_trace(buffer)
    assert restored.world == world
    assert restored.events == trace.events


def test_v1_trace_loads_with_no_world(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    lines = buffer.getvalue().splitlines(keepends=True)
    header = json.loads(lines[0])
    header["version"] = 1
    header.pop("world", None)
    restored = load_trace(
        io.StringIO(json.dumps(header) + "\n" + "".join(lines[1:]))
    )
    assert restored.world is None
    assert restored.events == trace.events


def test_malformed_world_in_header_rejected(trace):
    header = {
        "format": "repro-trace",
        "version": 2,
        "duration": 1.0,
        "events": 0,
        "world": {"catalog": {}},
    }
    with pytest.raises(ValueError, match="malformed world spec"):
        load_trace(io.StringIO(json.dumps(header) + "\n"))


def test_atomic_write_leaves_target_intact_on_failure(trace, tmp_path):
    path = tmp_path / "trace.jsonl"
    dump_trace(trace, path)
    original = path.read_bytes()

    class Unserializable:
        pass

    bad = WorkloadTrace(
        events=[Unserializable()], duration=1.0  # type: ignore[list-item]
    )
    with pytest.raises(TypeError):
        dump_trace(bad, path)
    assert path.read_bytes() == original  # target never clobbered
    leftovers = [p for p in tmp_path.iterdir() if p.name != "trace.jsonl"]
    assert leftovers == []  # temp file cleaned up


def test_malformed_header_reports_line_one():
    with pytest.raises(ValueError, match="line 1: malformed trace header"):
        load_trace(io.StringIO("{not json\n"))


def test_malformed_event_json_reports_line_number(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    lines = buffer.getvalue().splitlines(keepends=True)
    lines[3] = "{broken json\n"
    with pytest.raises(
        ValueError, match=r"line 4: malformed JSON in event record"
    ):
        load_trace(io.StringIO("".join(lines)))


def test_missing_field_reports_line_and_kind():
    header = {
        "format": "repro-trace",
        "version": 2,
        "duration": 10.0,
        "events": 1,
    }
    body = {"kind": "page_view", "at": 1.0, "user_id": "u1"}
    buffer = io.StringIO(
        json.dumps(header) + "\n" + json.dumps(body) + "\n"
    )
    with pytest.raises(
        ValueError,
        match=r"line 2: page_view record is missing field 'page_kind'",
    ):
        load_trace(buffer)


def test_truncation_reports_final_line(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    lines = buffer.getvalue().splitlines()
    truncated = io.StringIO("\n".join(lines[:-3]) + "\n")
    with pytest.raises(
        ValueError, match=rf"file ends at line {len(lines) - 3}"
    ):
        load_trace(truncated)


def test_unknown_event_kind_rejected():
    header = {
        "format": "repro-trace",
        "version": 1,
        "duration": 10.0,
        "events": 1,
    }
    body = {"kind": "mystery", "at": 1.0}
    buffer = io.StringIO(
        json.dumps(header) + "\n" + json.dumps(body) + "\n"
    )
    with pytest.raises(ValueError, match="unknown event kind"):
        load_trace(buffer)
