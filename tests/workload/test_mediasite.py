"""Tests for the media (news) site and its page builder."""

import json
import random

import pytest

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.http import Request, Status, URL
from repro.origin import OriginServer
from repro.workload import (
    CatalogConfig,
    MediaPageBuilder,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    build_media_site,
    generate_catalog,
    generate_users,
)


@pytest.fixture
def catalog():
    return generate_catalog(CatalogConfig(n_products=30), random.Random(0))


@pytest.fixture
def server(catalog):
    return OriginServer(build_media_site(catalog))


def get(server, path, now=0.0):
    return server.handle(Request.get(URL.parse(path)), now)


class TestMediaSite:
    def test_every_page_resource_is_servable(self, server):
        builder = MediaPageBuilder()
        for spec in (
            builder.home(),
            builder.section("shoes"),
            builder.article("p3"),
        ):
            for url in [spec.html] + [r.url for r in spec.resources]:
                response = server.handle(Request.get(url), 0.0)
                assert response.status == Status.OK, f"{url} failed"

    def test_front_page_ranks_by_relevance(self, server):
        response = get(server, "/")
        body = json.loads(response.body)
        scores = [item["price"] for item in body["results"]]
        assert scores == sorted(scores, reverse=True)

    def test_article_edit_invalidates_front_page(self, server):
        first = get(server, "/")
        # Editing any ranked article changes the front page.
        body = json.loads(first.body)
        top_article = body["results"][0]["id"]
        server.update("products", top_article, {"price": 0.1}, at=5.0)
        second = get(server, "/", now=6.0)
        assert second.version == first.version + 1

    def test_ticker_has_short_ttl(self, server):
        response = get(server, "/api/ticker")
        assert response.cache_control.max_age == 5.0

    def test_unknown_page_kind_rejected(self):
        with pytest.raises(ValueError):
            MediaPageBuilder().for_view("podcast", "x")


class TestMediaScenarioRun:
    def test_full_scenario_against_media_site(self, catalog):
        users = generate_users(
            UserPopulationConfig(n_users=12, consent_fraction=1.0),
            random.Random(1),
        )
        # High churn: breaking-news edit rate.
        config = WorkloadConfig(
            duration=600.0, session_rate=0.1, write_rate=0.2
        )
        trace = WorkloadGenerator(catalog, users, config).generate(
            random.Random(2)
        )
        def run(**kwargs):
            return SimulationRunner(
                ScenarioSpec(**kwargs),
                catalog,
                users,
                trace,
                site_factory=build_media_site,
                page_builder=MediaPageBuilder(),
            ).run()

        classic = run(scenario=Scenario.CLASSIC_CDN)
        strict = run(scenario=Scenario.SPEED_KIT)
        swr = run(
            scenario=Scenario.SPEED_KIT, stale_while_revalidate=True
        )
        assert strict.page_views == len(trace.page_views())
        # Extreme churn exposes the real trade-off: strict coherence
        # pays revalidation latency for dramatically fresher content...
        assert strict.delta_violations == 0
        assert strict.max_staleness < classic.max_staleness / 3
        assert strict.stale_read_fraction() < (
            classic.stale_read_fraction()
        )
        # ...and SWR (the production setting for churn-heavy sites)
        # recovers most of the latency while keeping staleness bounded
        # by its budget — unlike the classic CDN's TTL-wide staleness.
        assert swr.plt.percentile(50) < strict.plt.percentile(50)
        assert swr.max_staleness < classic.max_staleness
        assert swr.delta_violations == 0
