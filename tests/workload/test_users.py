"""Tests for user population generation."""

import random

import pytest

from repro.workload import UserPopulationConfig, generate_users


def test_config_validation():
    with pytest.raises(ValueError):
        UserPopulationConfig(n_users=0)
    with pytest.raises(ValueError):
        UserPopulationConfig(tier_mix=(("a", 0.5), ("b", 0.6)))


def test_deterministic():
    a = generate_users(UserPopulationConfig(n_users=30), random.Random(3))
    b = generate_users(UserPopulationConfig(n_users=30), random.Random(3))
    assert a.users == b.users


def test_population_shape():
    population = generate_users(
        UserPopulationConfig(n_users=500), random.Random(0)
    )
    assert len(population) == 500
    assert population.by_id("u17").user_id == "u17"
    tiers = {user.tier for user in population.users}
    assert tiers <= {"standard", "gold", "platinum"}
    connections = {user.connection for user in population.users}
    assert connections <= {"fiber", "cable", "lte", "3g"}


def test_mix_fractions_roughly_hold():
    population = generate_users(
        UserPopulationConfig(n_users=2000), random.Random(1)
    )
    standard = sum(1 for u in population.users if u.tier == "standard")
    assert standard / 2000 == pytest.approx(0.70, abs=0.05)
    logged_in = sum(1 for u in population.users if u.logged_in)
    assert logged_in / 2000 == pytest.approx(0.60, abs=0.05)


def test_segment_attribute_list():
    population = generate_users(
        UserPopulationConfig(n_users=10), random.Random(0)
    )
    attrs = population.segment_attribute_list()
    assert len(attrs) == 10
    assert set(attrs[0]) == {"tier", "locale"}


def test_sample_draws_members():
    population = generate_users(
        UserPopulationConfig(n_users=10), random.Random(0)
    )
    rng = random.Random(5)
    assert population.sample(rng) in population.users
