"""Tests for the workload generator and trace invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)


def make_generator(config=None, n_users=50, n_products=100):
    catalog = generate_catalog(
        CatalogConfig(n_products=n_products), random.Random(0)
    )
    users = generate_users(
        UserPopulationConfig(n_users=n_users), random.Random(1)
    )
    return WorkloadGenerator(catalog, users, config)


def test_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(duration=0)
    with pytest.raises(ValueError):
        WorkloadConfig(session_rate=0)
    with pytest.raises(ValueError):
        WorkloadConfig(nav_category=0.5, nav_product=0.6, nav_home=0.1)


def test_trace_is_ordered_and_bounded():
    generator = make_generator(WorkloadConfig(duration=600.0))
    trace = generator.generate(random.Random(2))
    trace.validate()
    assert all(0 <= event.at <= 600.0 for event in trace.events)


def test_trace_is_deterministic():
    generator = make_generator(WorkloadConfig(duration=300.0))
    a = generator.generate(random.Random(9))
    b = generator.generate(random.Random(9))
    assert a.events == b.events


def test_sessions_start_at_home():
    generator = make_generator(WorkloadConfig(duration=600.0))
    trace = generator.generate(random.Random(3))
    views = trace.page_views()
    assert views, "expected some page views"
    # Find first view of each user's first session: the earliest view of
    # any user must be a home view.
    first_views = {}
    for view in views:
        first_views.setdefault(view.user_id, view)
    assert all(v.page_kind == "home" for v in first_views.values())


def test_write_stream_present_and_zipfian():
    config = WorkloadConfig(duration=3600.0, write_rate=0.5, write_zipf_s=1.0)
    generator = make_generator(config)
    trace = generator.generate(random.Random(4))
    updates = trace.product_updates()
    assert len(updates) > 100
    hot = sum(1 for u in updates if u.product_id == "p0")
    cold = sum(1 for u in updates if u.product_id == "p90")
    assert hot > cold


def test_no_writes_when_rate_zero():
    generator = make_generator(WorkloadConfig(duration=600.0, write_rate=0.0))
    trace = generator.generate(random.Random(5))
    assert trace.product_updates() == []


def test_cart_adds_only_from_logged_in_users():
    config = WorkloadConfig(duration=3600.0, cart_add_prob=0.5)
    generator = make_generator(config)
    trace = generator.generate(random.Random(6))
    adds = trace.cart_adds()
    assert adds, "expected some cart adds with high probability"
    population = generator.users
    assert all(population.by_id(a.user_id).logged_in for a in adds)


def test_mean_session_length_roughly_holds():
    config = WorkloadConfig(
        duration=20_000.0, mean_session_length=4.0, think_time_mean=1.0
    )
    generator = make_generator(config)
    trace = generator.generate(random.Random(7))
    views = trace.page_views()
    # Sessions per the generator arrive at 0.5/s over 20000s ≈ 10000.
    sessions = sum(1 for v in views if v.page_kind == "home" and True)
    # Home views include mid-session returns, so use total/expected
    # sessions as a loose bound instead.
    n_sessions = 0.5 * 20_000
    assert len(views) / n_sessions == pytest.approx(4.0, rel=0.25)


@given(seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_any_seed_yields_valid_trace(seed):
    generator = make_generator(WorkloadConfig(duration=200.0))
    trace = generator.generate(random.Random(seed))
    trace.validate()
    for view in trace.page_views():
        assert view.page_kind in ("home", "category", "product")
