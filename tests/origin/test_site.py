"""Tests for the declarative site description."""

import pytest

from repro.http import URL
from repro.origin import (
    Eq,
    PersonalizationKind,
    Query,
    ResourceKind,
    ResourceSpec,
    Site,
)


def product_route():
    return ResourceSpec(
        name="product-page",
        pattern="/product/{id}",
        kind=ResourceKind.PAGE,
        doc_keys=lambda p: [f"products/{p['id']}"],
    )


class TestResourceSpec:
    def test_pattern_must_be_absolute(self):
        with pytest.raises(ValueError):
            ResourceSpec(name="x", pattern="nope", kind=ResourceKind.PAGE)

    def test_match_captures_params(self):
        spec = product_route()
        assert spec.match("/product/42") == {"id": "42"}

    def test_match_rejects_wrong_shape(self):
        spec = product_route()
        assert spec.match("/product") is None
        assert spec.match("/product/42/extra") is None
        assert spec.match("/category/42") is None

    def test_static_segments_must_equal(self):
        spec = ResourceSpec(
            name="s", pattern="/static/{name}", kind=ResourceKind.STATIC
        )
        assert spec.match("/static/app.js") == {"name": "app.js"}
        assert spec.match("/media/app.js") is None

    def test_multiple_params(self):
        spec = ResourceSpec(
            name="x",
            pattern="/c/{category}/p/{id}",
            kind=ResourceKind.PAGE,
        )
        assert spec.match("/c/shoes/p/7") == {"category": "shoes", "id": "7"}

    def test_resolve_doc_keys(self):
        spec = product_route()
        assert spec.resolve_doc_keys({"id": "42"}) == ["products/42"]

    def test_doc_keys_default_empty(self):
        spec = ResourceSpec(name="x", pattern="/x", kind=ResourceKind.PAGE)
        assert spec.resolve_doc_keys({}) == []

    def test_query_resource_requires_query(self):
        with pytest.raises(ValueError):
            ResourceSpec(name="q", pattern="/q", kind=ResourceKind.QUERY)

    def test_resolve_query(self):
        spec = ResourceSpec(
            name="category",
            pattern="/category/{name}",
            kind=ResourceKind.QUERY,
            query=lambda p: Query("products", Eq("category", p["name"])),
        )
        query = spec.resolve_query({"name": "shoes"})
        assert query.matches("products", {"category": "shoes"})

    def test_default_personalization_is_none(self):
        assert product_route().personalization is PersonalizationKind.NONE


class TestSite:
    def test_first_match_wins(self):
        site = Site()
        site.add_route(
            ResourceSpec(
                name="special",
                pattern="/product/featured",
                kind=ResourceKind.PAGE,
            )
        )
        site.add_route(product_route())
        spec, params = site.match(URL.of("/product/featured"))
        assert spec.name == "special"
        spec, params = site.match(URL.of("/product/42"))
        assert spec.name == "product-page"
        assert params == {"id": "42"}

    def test_no_match_returns_none(self):
        site = Site()
        assert site.match(URL.of("/nothing")) is None

    def test_spec_named(self):
        site = Site()
        site.add_route(product_route())
        assert site.spec_named("product-page").pattern == "/product/{id}"
        with pytest.raises(KeyError):
            site.spec_named("ghost")
