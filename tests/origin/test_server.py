"""Tests for the origin server façade."""

import json

import pytest

from repro.http import Headers, Method, Request, Response, Status, URL
from repro.origin import (
    Eq,
    OriginServer,
    PersonalizationKind,
    Query,
    ResourceKind,
    ResourceSpec,
    Site,
    StaticTtlPolicy,
)
from repro.origin.server import SEGMENT_PARAM


@pytest.fixture
def site():
    site = Site()
    site.add_route(
        ResourceSpec(
            name="asset",
            pattern="/static/{name}",
            kind=ResourceKind.STATIC,
            doc_keys=lambda p: [f"assets/{p['name']}"],
            size_bytes=50_000,
        )
    )
    site.add_route(
        ResourceSpec(
            name="product-page",
            pattern="/product/{id}",
            kind=ResourceKind.PAGE,
            personalization=PersonalizationKind.SEGMENT,
            doc_keys=lambda p: [f"products/{p['id']}"],
        )
    )
    site.add_route(
        ResourceSpec(
            name="category",
            pattern="/category/{name}",
            kind=ResourceKind.QUERY,
            query=lambda p: Query("products", Eq("category", p["name"])),
        )
    )
    site.add_route(
        ResourceSpec(
            name="cart",
            pattern="/api/blocks/cart",
            kind=ResourceKind.FRAGMENT,
            personalization=PersonalizationKind.USER,
        )
    )
    site.store.put("assets", "app.js", {"kind": "js"})
    site.store.put("products", "1", {"category": "shoes", "price": 10})
    site.store.put("products", "2", {"category": "hats", "price": 5})
    return site


@pytest.fixture
def server(site):
    return OriginServer(site)


def get(server, path, now=0.0, headers=None):
    request = Request.get(URL.parse(path), headers=Headers(headers or {}))
    return server.handle(request, now)


class TestBasicServing:
    def test_ok_response_with_headers(self, server):
        resp = get(server, "/product/1")
        assert resp.status == Status.OK
        assert resp.etag is not None
        assert "Cache-Control" in resp.headers
        assert resp.version == 1
        body = json.loads(resp.body)
        assert body["docs"]["products/1"]["price"] == 10

    def test_missing_document_is_404(self, server):
        assert get(server, "/product/999").status == Status.NOT_FOUND

    def test_unknown_route_is_404(self, server):
        assert get(server, "/nope").status == Status.NOT_FOUND

    def test_static_asset_is_immutable(self, site):
        site.store.put("assets", "app.js", {"kind": "js"})
        server = OriginServer(site)
        resp = get(server, "/static/app.js")
        assert resp.status == Status.OK
        assert resp.cache_control.immutable
        assert resp.headers["Content-Length"] == "50000"

    def test_request_counter(self, server):
        get(server, "/product/1")
        get(server, "/product/1")
        assert server.requests_served == 2


class TestVersioning:
    def test_write_bumps_served_version(self, server):
        first = get(server, "/product/1", now=0.0)
        server.write("products", "1", {"category": "shoes", "price": 12}, at=5.0)
        second = get(server, "/product/1", now=6.0)
        assert first.version == 1
        assert second.version == 2

    def test_unrelated_write_does_not_bump(self, server):
        get(server, "/product/1", now=0.0)
        server.write("products", "2", {"category": "hats", "price": 6}, at=5.0)
        assert get(server, "/product/1", now=6.0).version == 1

    def test_query_resource_bumps_when_member_changes(self, server):
        first = get(server, "/category/shoes", now=0.0)
        server.update("products", "1", {"price": 11}, at=5.0)
        second = get(server, "/category/shoes", now=6.0)
        assert second.version == first.version + 1

    def test_query_resource_bumps_when_document_enters_result(self, server):
        get(server, "/category/shoes", now=0.0)
        # p2 was a hat; making it a shoe changes the shoes listing.
        server.write("products", "2", {"category": "shoes", "price": 5}, at=5.0)
        assert get(server, "/category/shoes", now=6.0).version == 2

    def test_query_resource_bumps_when_document_leaves_result(self, server):
        get(server, "/category/shoes", now=0.0)
        server.write("products", "1", {"category": "hats", "price": 10}, at=5.0)
        assert get(server, "/category/shoes", now=6.0).version == 2

    def test_query_resource_ignores_non_matching_change(self, server):
        get(server, "/category/shoes", now=0.0)
        server.update("products", "2", {"price": 99}, at=5.0)  # still hats
        assert get(server, "/category/shoes", now=6.0).version == 1

    def test_segment_variants_share_version_history(self, server):
        plain = get(server, "/product/1", now=0.0)
        variant = get(server, f"/product/1?{SEGMENT_PARAM}=s3", now=1.0)
        assert plain.version == variant.version
        server.update("products", "1", {"price": 11}, at=5.0)
        assert get(server, f"/product/1?{SEGMENT_PARAM}=s3", now=6.0).version == 2


class TestConditionalRequests:
    def test_matching_etag_yields_304(self, server):
        first = get(server, "/product/1", now=0.0)
        resp = get(
            server,
            "/product/1",
            now=10.0,
            headers={"If-None-Match": first.etag},
        )
        assert resp.status == Status.NOT_MODIFIED
        assert resp.version == first.version

    def test_stale_etag_yields_full_response(self, server):
        first = get(server, "/product/1", now=0.0)
        server.update("products", "1", {"price": 11}, at=5.0)
        resp = get(
            server,
            "/product/1",
            now=10.0,
            headers={"If-None-Match": first.etag},
        )
        assert resp.status == Status.OK
        assert resp.version == 2


class TestPersonalization:
    def test_anonymous_fragment_is_not_user_personalized(self, server):
        resp = get(server, "/api/blocks/cart")
        assert resp.status == Status.OK
        assert "user" not in json.loads(resp.body)

    def test_cookie_identifies_user(self, server):
        server.write("carts", "u1", {"items": [1, 2]}, at=0.0)
        resp = get(
            server,
            "/api/blocks/cart",
            now=1.0,
            headers={"Cookie": "session=u1; theme=dark"},
        )
        body = json.loads(resp.body)
        assert body["user"] == "u1"
        assert body["cart"] == {"items": [1, 2]}

    def test_user_personalized_is_uncacheable(self, server):
        resp = get(
            server, "/api/blocks/cart", headers={"X-User-Id": "u1"}
        )
        assert resp.cache_control.no_store
        assert resp.cache_control.private

    def test_segment_variant_body_differs(self, server):
        plain = get(server, "/product/1")
        variant = get(server, f"/product/1?{SEGMENT_PARAM}=s3")
        assert json.loads(variant.body)["segment"] == "s3"
        assert "segment" not in json.loads(plain.body)

    def test_per_user_version_histories_are_separate(self, server):
        get(server, "/api/blocks/cart", headers={"X-User-Id": "u1"})
        get(server, "/api/blocks/cart", headers={"X-User-Id": "u2"})
        server.write("carts", "u1", {"items": [1]}, at=5.0)
        r1 = get(
            server, "/api/blocks/cart", now=6.0, headers={"X-User-Id": "u1"}
        )
        r2 = get(
            server, "/api/blocks/cart", now=6.0, headers={"X-User-Id": "u2"}
        )
        assert r1.version == 2
        assert r2.version == 1


class TestWriteApi:
    def test_post_document_applies_write(self, server):
        request = Request(
            method=Method.POST,
            url=URL.parse("/api/documents/products/3"),
            body={"category": "shoes", "price": 20},
        )
        resp = server.handle(request, now=1.0)
        assert resp.status == Status.OK
        assert server.site.store.get("products", "3").data["price"] == 20

    def test_malformed_write_is_400(self, server):
        request = Request(
            method=Method.POST, url=URL.parse("/api/oops"), body={"a": 1}
        )
        assert server.handle(request, now=0.0).status == Status.BAD_REQUEST

    def test_post_without_body_is_400(self, server):
        request = Request(
            method=Method.POST, url=URL.parse("/api/documents/products/3")
        )
        assert server.handle(request, now=0.0).status == Status.BAD_REQUEST

    def test_delete_document(self, server):
        request = Request(
            method=Method.DELETE,
            url=URL.parse("/api/documents/products/1"),
        )
        response = server.handle(request, now=2.0)
        assert response.status == Status.OK
        assert server.site.store.get("products", "1") is None

    def test_delete_bumps_dependent_versions(self, server):
        get(server, "/category/shoes", now=0.0)
        request = Request(
            method=Method.DELETE,
            url=URL.parse("/api/documents/products/1"),
        )
        server.handle(request, now=5.0)
        # The shoes listing lost a member -> new version.
        assert get(server, "/category/shoes", now=6.0).version == 2


class TestTtlPolicy:
    def test_overrides_apply(self, site):
        policy = StaticTtlPolicy(overrides={ResourceKind.PAGE: 123.0})
        server = OriginServer(site, ttl_policy=policy)
        resp = get(server, "/product/1")
        assert resp.cache_control.max_age == 123.0

    def test_zero_ttl_means_no_store(self, site):
        policy = StaticTtlPolicy(overrides={ResourceKind.PAGE: 0.0})
        server = OriginServer(site, ttl_policy=policy)
        assert get(server, "/product/1").cache_control.no_store

    def test_ttl_hint_beats_kind_default(self, site):
        site.add_route(
            ResourceSpec(
                name="hinted",
                pattern="/hinted",
                kind=ResourceKind.PAGE,
                ttl_hint=7.0,
            )
        )
        server = OriginServer(site)
        assert get(server, "/hinted").cache_control.max_age == 7.0

    def test_swr_is_attached_when_configured(self, site):
        policy = StaticTtlPolicy(stale_while_revalidate=30.0)
        server = OriginServer(site, ttl_policy=policy)
        resp = get(server, "/product/1")
        assert resp.cache_control.stale_while_revalidate == 30.0
