"""Tests for the predicate query engine."""

from repro.origin import (
    And,
    Contains,
    Eq,
    Gt,
    Gte,
    In,
    Lt,
    Lte,
    Not,
    Or,
    Query,
)

DOC = {
    "name": "sneaker",
    "price": 79.99,
    "category": "shoes",
    "tags": ["sale", "new"],
    "stock": {"warehouse": 12},
}


class TestPredicates:
    def test_eq(self):
        assert Eq("category", "shoes").matches(DOC)
        assert not Eq("category", "hats").matches(DOC)

    def test_eq_missing_field_matches_none(self):
        assert Eq("missing", None).matches(DOC)
        assert not Eq("missing", "x").matches(DOC)

    def test_dotted_path(self):
        assert Eq("stock.warehouse", 12).matches(DOC)
        assert not Eq("stock.shop", 1).matches(DOC)

    def test_dotted_path_through_non_mapping(self):
        assert not Eq("price.cents", 99).matches(DOC)

    def test_comparisons(self):
        assert Lt("price", 100).matches(DOC)
        assert not Lt("price", 50).matches(DOC)
        assert Lte("price", 79.99).matches(DOC)
        assert Gt("price", 50).matches(DOC)
        assert Gte("price", 79.99).matches(DOC)

    def test_comparison_on_missing_field_is_false(self):
        assert not Lt("missing", 10).matches(DOC)
        assert not Gt("missing", 10).matches(DOC)

    def test_comparison_type_error_is_false(self):
        assert not Lt("name", 10).matches(DOC)

    def test_in(self):
        assert In("category", ["shoes", "hats"]).matches(DOC)
        assert not In("category", ["hats"]).matches(DOC)

    def test_contains(self):
        assert Contains("tags", "sale").matches(DOC)
        assert not Contains("tags", "vintage").matches(DOC)
        assert not Contains("name", "s").matches(DOC)  # not a list

    def test_and_or_not(self):
        both = And([Eq("category", "shoes"), Lt("price", 100)])
        assert both.matches(DOC)
        either = Or([Eq("category", "hats"), Lt("price", 100)])
        assert either.matches(DOC)
        assert Not(Eq("category", "hats")).matches(DOC)

    def test_operator_sugar(self):
        assert (Eq("category", "shoes") & Lt("price", 100)).matches(DOC)
        assert (Eq("category", "hats") | Lt("price", 100)).matches(DOC)
        assert (~Eq("category", "hats")).matches(DOC)

    def test_keys_are_stable_and_distinct(self):
        a = Eq("category", "shoes")
        b = Eq("category", "hats")
        assert a.key() == Eq("category", "shoes").key()
        assert a.key() != b.key()
        assert And([a, b]).key() != Or([a, b]).key()


class TestQuery:
    def test_collection_must_match(self):
        q = Query("products", Eq("category", "shoes"))
        assert q.matches("products", DOC)
        assert not q.matches("users", DOC)

    def test_no_predicate_matches_everything_in_collection(self):
        q = Query("products")
        assert q.matches("products", {})

    def test_key_includes_ordering_and_limit(self):
        plain = Query("products", Eq("category", "shoes"))
        ordered = Query(
            "products",
            Eq("category", "shoes"),
            order_by="price",
            descending=True,
            limit=10,
        )
        assert plain.key() != ordered.key()
        assert "limit:10" in ordered.key()
