"""Tests for the versioned document store."""

import pytest

from repro.origin import DocumentStore, Eq, Query, VersionConflict


@pytest.fixture
def store():
    return DocumentStore()


class TestPutGet:
    def test_insert_starts_at_version_1(self, store):
        doc = store.put("products", "p1", {"price": 10}, at=5.0)
        assert doc.version == 1
        assert doc.updated_at == 5.0
        assert doc.key == "products/p1"

    def test_versions_increment_per_document(self, store):
        store.put("products", "p1", {"price": 10})
        second = store.put("products", "p1", {"price": 12})
        other = store.put("products", "p2", {"price": 5})
        assert second.version == 2
        assert other.version == 1

    def test_get_missing_returns_none(self, store):
        assert store.get("products", "ghost") is None

    def test_snapshots_are_isolated_from_store(self, store):
        store.put("products", "p1", {"tags": ["a"]})
        snapshot = store.get("products", "p1")
        snapshot.data["tags"].append("b")
        assert store.get("products", "p1").data["tags"] == ["a"]

    def test_input_data_is_copied(self, store):
        data = {"tags": ["a"]}
        store.put("products", "p1", data)
        data["tags"].append("b")
        assert store.get("products", "p1").data["tags"] == ["a"]

    def test_update_merges(self, store):
        store.put("products", "p1", {"price": 10, "name": "x"})
        doc = store.update("products", "p1", {"price": 12}, at=3.0)
        assert doc.data == {"price": 12, "name": "x"}
        assert doc.version == 2

    def test_update_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.update("products", "ghost", {"a": 1})

    def test_delete(self, store):
        store.put("products", "p1", {"price": 10})
        store.delete("products", "p1")
        assert store.get("products", "p1") is None

    def test_delete_missing_is_noop(self, store):
        store.delete("products", "ghost")  # must not raise

    def test_count_and_collections(self, store):
        store.put("products", "p1", {})
        store.put("products", "p2", {})
        store.put("users", "u1", {})
        assert store.count("products") == 2
        assert store.count("empty") == 0
        assert store.collections() == ["products", "users"]


class TestOptimisticConcurrency:
    def test_matching_version_succeeds(self, store):
        store.put("products", "p1", {"price": 10})
        doc = store.put_if_version(
            "products", "p1", {"price": 12}, expected_version=1
        )
        assert doc.version == 2

    def test_stale_version_conflicts(self, store):
        store.put("products", "p1", {"price": 10})
        store.put("products", "p1", {"price": 11})  # now v2
        with pytest.raises(VersionConflict) as exc_info:
            store.put_if_version(
                "products", "p1", {"price": 12}, expected_version=1
            )
        assert exc_info.value.expected == 1
        assert exc_info.value.actual == 2
        # The document is untouched by the failed write.
        assert store.get("products", "p1").data == {"price": 11}

    def test_insert_only_with_version_zero(self, store):
        doc = store.put_if_version(
            "products", "fresh", {"price": 1}, expected_version=0
        )
        assert doc.version == 1
        with pytest.raises(VersionConflict):
            store.put_if_version(
                "products", "fresh", {"price": 2}, expected_version=0
            )

    def test_conflict_emits_no_change_event(self, store):
        store.put("products", "p1", {"price": 10})
        events = []
        store.subscribe(events.append)
        with pytest.raises(VersionConflict):
            store.put_if_version(
                "products", "p1", {"price": 99}, expected_version=7
            )
        assert events == []

    def test_read_modify_write_retry_loop(self, store):
        """The canonical client pattern against the CAS API."""
        store.put("counters", "c", {"value": 0})

        def increment():
            while True:
                current = store.get("counters", "c")
                try:
                    return store.put_if_version(
                        "counters",
                        "c",
                        {"value": current.data["value"] + 1},
                        expected_version=current.version,
                    )
                except VersionConflict:
                    continue

        # Simulate interleaving: a competing write lands between the
        # read and the CAS on the first try.
        current = store.get("counters", "c")
        store.put("counters", "c", {"value": 100})  # competitor
        with pytest.raises(VersionConflict):
            store.put_if_version(
                "counters",
                "c",
                {"value": current.data["value"] + 1},
                expected_version=current.version,
            )
        doc = increment()  # the retry loop succeeds
        assert doc.data["value"] == 101


class TestChangeEvents:
    def test_insert_event(self, store):
        events = []
        store.subscribe(events.append)
        store.put("products", "p1", {"price": 10}, at=2.0)
        (event,) = events
        assert event.is_insert and not event.is_update
        assert event.after.version == 1
        assert event.at == 2.0

    def test_update_event_has_before_and_after(self, store):
        events = []
        store.put("products", "p1", {"price": 10})
        store.subscribe(events.append)
        store.put("products", "p1", {"price": 12}, at=4.0)
        (event,) = events
        assert event.is_update
        assert event.before.data == {"price": 10}
        assert event.after.data == {"price": 12}

    def test_delete_event(self, store):
        events = []
        store.put("products", "p1", {"price": 10})
        store.subscribe(events.append)
        store.delete("products", "p1", at=9.0)
        (event,) = events
        assert event.is_delete
        assert event.after is None
        assert event.before.data == {"price": 10}

    def test_delete_missing_emits_nothing(self, store):
        events = []
        store.subscribe(events.append)
        store.delete("products", "ghost")
        assert events == []

    def test_multiple_listeners_all_called(self, store):
        a, b = [], []
        store.subscribe(a.append)
        store.subscribe(b.append)
        store.put("products", "p1", {})
        assert len(a) == len(b) == 1


class TestFind:
    def test_filter(self, store):
        store.put("products", "p1", {"category": "shoes", "price": 10})
        store.put("products", "p2", {"category": "hats", "price": 5})
        store.put("products", "p3", {"category": "shoes", "price": 99})
        results = store.find(Query("products", Eq("category", "shoes")))
        assert [doc.doc_id for doc in results] == ["p1", "p3"]

    def test_order_and_limit(self, store):
        for i, price in enumerate([30, 10, 20]):
            store.put("products", f"p{i}", {"price": price})
        query = Query("products", order_by="price", descending=True, limit=2)
        results = store.find(query)
        assert [doc.data["price"] for doc in results] == [30, 20]

    def test_order_with_missing_field_sorts_last(self, store):
        store.put("products", "a", {"price": 10})
        store.put("products", "b", {})
        results = store.find(Query("products", order_by="price"))
        assert [doc.doc_id for doc in results] == ["a", "b"]

    def test_empty_collection(self, store):
        assert store.find(Query("nothing")) == []
