"""Tests for the ground-truth resource version registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.origin import ResourceVersions


@pytest.fixture
def versions():
    return ResourceVersions()


class TestRegistration:
    def test_register_starts_at_version_1(self, versions):
        versions.register("r", at=5.0)
        assert versions.current("r") == 1

    def test_register_is_idempotent(self, versions):
        versions.register("r", at=0.0)
        versions.bump("r", at=1.0)
        versions.register("r", at=2.0)
        assert versions.current("r") == 2

    def test_unknown_resource_raises(self, versions):
        with pytest.raises(KeyError):
            versions.current("ghost")
        with pytest.raises(KeyError):
            versions.version_at("ghost", 0.0)


class TestBumping:
    def test_bump_increments(self, versions):
        versions.register("r")
        assert versions.bump("r", at=1.0) == 2
        assert versions.bump("r", at=2.0) == 3

    def test_bump_backwards_in_time_rejected(self, versions):
        versions.register("r", at=5.0)
        with pytest.raises(ValueError):
            versions.bump("r", at=1.0)

    def test_bump_at_same_time_allowed(self, versions):
        versions.register("r", at=5.0)
        versions.bump("r", at=5.0)
        assert versions.current("r") == 2


class TestDependencies:
    def test_bump_dependents(self, versions):
        versions.depend("page-a", "products/1")
        versions.depend("page-b", "products/1")
        versions.depend("page-c", "products/2")
        affected = versions.bump_dependents("products/1", at=1.0)
        assert affected == {"page-a", "page-b"}
        assert versions.current("page-a") == 2
        assert versions.current("page-c") == 1

    def test_dependency_reverse_index(self, versions):
        versions.depend("page", "products/1")
        versions.depend("page", "products/2")
        assert versions.dependencies_of("page") == {
            "products/1",
            "products/2",
        }
        assert versions.dependents_of("products/1") == {"page"}

    def test_no_dependents_is_empty(self, versions):
        assert versions.bump_dependents("ghost/1", at=0.0) == set()


class TestHistory:
    def test_version_at_times(self, versions):
        versions.register("r", at=0.0)
        versions.bump("r", at=10.0)
        versions.bump("r", at=20.0)
        assert versions.version_at("r", 0.0) == 1
        assert versions.version_at("r", 9.99) == 1
        assert versions.version_at("r", 10.0) == 2
        assert versions.version_at("r", 15.0) == 2
        assert versions.version_at("r", 100.0) == 3

    def test_version_before_existence_raises(self, versions):
        versions.register("r", at=10.0)
        with pytest.raises(ValueError):
            versions.version_at("r", 5.0)

    def test_versions_between_includes_boundary_version(self, versions):
        versions.register("r", at=0.0)
        versions.bump("r", at=10.0)
        versions.bump("r", at=20.0)
        # Window [5, 15]: v1 was current at 5; v2 appeared at 10.
        assert versions.versions_between("r", 5.0, 15.0) == [1, 2]
        # Window [10, 15]: v2 current at 10 (bump exactly at start).
        assert versions.versions_between("r", 10.0, 15.0) == [2]
        # Window entirely inside one version.
        assert versions.versions_between("r", 11.0, 19.0) == [2]

    def test_versions_between_bad_window(self, versions):
        versions.register("r")
        with pytest.raises(ValueError):
            versions.versions_between("r", 5.0, 1.0)

    def test_known_resources_sorted(self, versions):
        versions.register("b")
        versions.register("a")
        assert versions.known_resources() == ["a", "b"]


@given(bump_times=st.lists(st.floats(0.001, 1000), min_size=1, max_size=30))
def test_version_at_is_consistent_with_bump_order(bump_times):
    versions = ResourceVersions()
    versions.register("r", at=0.0)
    times = sorted(bump_times)
    for t in times:
        versions.bump("r", at=t)
    # After all bumps the current version is 1 + number of bumps, and
    # version_at after the last bump agrees.
    assert versions.current("r") == 1 + len(times)
    assert versions.version_at("r", times[-1] + 1) == 1 + len(times)
    # At time zero only version 1 existed.
    assert versions.version_at("r", 0.0) == 1
