"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_all_examples_are_covered():
    """Every example script has a smoke test in this module."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    tested = {
        "quickstart.py",
        "ecommerce_comparison.py",
        "coherence_walkthrough.py",
        "gdpr_audit.py",
        "dynamic_blocks.py",
        "offline_resilience.py",
        "news_site.py",
    }
    assert scripts == tested


def test_quickstart():
    out = run_example("quickstart.py")
    assert "cold fetch" in out
    assert "version: 2" in out  # saw the new price


def test_ecommerce_comparison():
    out = run_example("ecommerce_comparison.py", "--quick")
    assert "Scenario comparison" in out
    assert "speed-kit" in out
    assert "A/B" in out


def test_coherence_walkthrough():
    out = run_example("coherence_walkthrough.py")
    assert "IN sketch" in out
    assert "key removed automatically" in out


def test_gdpr_audit():
    out = run_example("gdpr_audit.py")
    assert "removed headers" in out
    assert "k-anonymity" in out


def test_dynamic_blocks():
    out = run_example("dynamic_blocks.py")
    assert "+blocks" in out
    assert "never the cart" in out


def test_offline_resilience():
    out = run_example("offline_resilience.py")
    assert "Availability through the outage" in out


def test_news_site():
    out = run_example("news_site.py")
    assert "Breaking-news churn" in out
