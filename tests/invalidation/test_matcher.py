"""Tests for the streaming query matcher."""

from repro.invalidation import QueryMatcher
from repro.origin import Document, Eq, Query
from repro.origin.store import ChangeEvent


def doc(doc_id, data, version=1, collection="products"):
    return Document(
        collection=collection,
        doc_id=doc_id,
        data=data,
        version=version,
        updated_at=0.0,
    )


def change(before, after, collection="products", doc_id="p1"):
    return ChangeEvent(
        collection=collection,
        doc_id=doc_id,
        before=before,
        after=after,
        at=1.0,
    )


def shoes_query():
    return Query("products", Eq("category", "shoes"))


class TestSubscriptions:
    def test_subscribe_and_count(self):
        matcher = QueryMatcher()
        matcher.subscribe("r1", shoes_query())
        matcher.subscribe("r2", Query("products", Eq("category", "hats")))
        assert matcher.subscription_count() == 2

    def test_subscribe_is_idempotent(self):
        matcher = QueryMatcher()
        matcher.subscribe("r1", shoes_query())
        matcher.subscribe("r1", shoes_query())
        assert matcher.subscription_count() == 1

    def test_unsubscribe(self):
        matcher = QueryMatcher()
        sub = matcher.subscribe("r1", shoes_query())
        assert matcher.unsubscribe(sub)
        assert not matcher.unsubscribe(sub)
        assert matcher.subscription_count() == 0


class TestMatching:
    def test_update_within_result_set_matches(self):
        matcher = QueryMatcher()
        matcher.subscribe("r1", shoes_query())
        event = change(
            doc("p1", {"category": "shoes", "price": 10}),
            doc("p1", {"category": "shoes", "price": 12}, version=2),
        )
        assert matcher.affected_resources(event) == {"r1"}

    def test_entering_result_set_matches(self):
        matcher = QueryMatcher()
        matcher.subscribe("r1", shoes_query())
        event = change(
            doc("p1", {"category": "hats"}),
            doc("p1", {"category": "shoes"}, version=2),
        )
        assert matcher.affected_resources(event) == {"r1"}

    def test_leaving_result_set_matches(self):
        matcher = QueryMatcher()
        matcher.subscribe("r1", shoes_query())
        event = change(
            doc("p1", {"category": "shoes"}),
            doc("p1", {"category": "hats"}, version=2),
        )
        assert matcher.affected_resources(event) == {"r1"}

    def test_unrelated_change_does_not_match(self):
        matcher = QueryMatcher()
        matcher.subscribe("r1", shoes_query())
        event = change(
            doc("p1", {"category": "hats"}),
            doc("p1", {"category": "hats", "price": 1}, version=2),
        )
        assert matcher.affected_resources(event) == set()

    def test_insert_and_delete(self):
        matcher = QueryMatcher()
        matcher.subscribe("r1", shoes_query())
        insert = change(None, doc("p1", {"category": "shoes"}))
        delete = change(doc("p1", {"category": "shoes"}), None)
        assert matcher.affected_resources(insert) == {"r1"}
        assert matcher.affected_resources(delete) == {"r1"}

    def test_collection_index_skips_other_collections(self):
        matcher = QueryMatcher()
        matcher.subscribe("r1", shoes_query())
        event = change(
            None,
            doc("u1", {"category": "shoes"}, collection="users"),
            collection="users",
            doc_id="u1",
        )
        assert matcher.affected_resources(event) == set()
        assert matcher.matches_evaluated == 0

    def test_multiple_subscriptions_can_match(self):
        matcher = QueryMatcher()
        matcher.subscribe("cheap", Query("products", Eq("price", 5)))
        matcher.subscribe("shoes", shoes_query())
        event = change(
            None, doc("p1", {"category": "shoes", "price": 5})
        )
        assert matcher.affected_resources(event) == {"cheap", "shoes"}
