"""Tests for the partitioned (grid) query matcher."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.invalidation import PartitionedMatcher, QueryMatcher
from repro.origin import Document, Eq, Query
from repro.origin.store import ChangeEvent


def doc(doc_id, data):
    return Document(
        collection="products",
        doc_id=doc_id,
        data=data,
        version=1,
        updated_at=0.0,
    )


def change(doc_id, data):
    return ChangeEvent(
        collection="products",
        doc_id=doc_id,
        before=None,
        after=doc(doc_id, data),
        at=0.0,
    )


def populate(matcher, n_queries=30):
    for i in range(n_queries):
        matcher.subscribe(
            f"resource-{i}", Query("products", Eq("category", f"cat-{i % 10}"))
        )


class TestEquivalence:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedMatcher(query_partitions=0)
        with pytest.raises(ValueError):
            PartitionedMatcher(object_partitions=-1)

    @given(
        q=st.integers(1, 6),
        o=st.integers(1, 6),
        events=st.lists(
            st.tuples(
                st.integers(0, 20),  # doc id
                st.integers(0, 12),  # category
            ),
            max_size=30,
        ),
    )
    @settings(max_examples=40)
    def test_matches_exactly_like_flat_matcher(self, q, o, events):
        flat = QueryMatcher()
        grid = PartitionedMatcher(query_partitions=q, object_partitions=o)
        populate(flat)
        populate(grid)
        for doc_id, category in events:
            event = change(f"p{doc_id}", {"category": f"cat-{category}"})
            assert grid.affected_resources(event) == (
                flat.affected_resources(event)
            )

    def test_subscription_count_matches(self):
        grid = PartitionedMatcher(query_partitions=4)
        populate(grid, n_queries=25)
        assert grid.subscription_count() == 25

    def test_unsubscribe(self):
        grid = PartitionedMatcher(query_partitions=3)
        sub = grid.subscribe("r", Query("products", Eq("category", "x")))
        assert grid.unsubscribe(sub)
        assert grid.subscription_count() == 0
        assert grid.affected_resources(change("p1", {"category": "x"})) == (
            set()
        )


class TestScaling:
    def run_stream(self, grid, n_events=300):
        rng = random.Random(0)
        for i in range(n_events):
            grid.affected_resources(
                change(f"p{i}", {"category": f"cat-{rng.randrange(10)}"})
            )

    def test_query_partitioning_shrinks_per_node_work(self):
        small = PartitionedMatcher(query_partitions=1)
        large = PartitionedMatcher(query_partitions=8)
        for grid in (small, large):
            populate(grid, n_queries=64)
            self.run_stream(grid)
        # Same total matching work, spread over 8x the nodes.
        assert small.total_evaluations() == large.total_evaluations()
        assert large.max_node_evaluations() < (
            small.max_node_evaluations() / 4
        )

    def test_object_partitioning_shrinks_events_per_node(self):
        grid = PartitionedMatcher(query_partitions=1, object_partitions=4)
        populate(grid)
        self.run_stream(grid, n_events=400)
        events_per_node = [
            stats.events_seen for stats in grid.node_stats().values()
        ]
        assert sum(events_per_node) == 400
        assert max(events_per_node) < 200  # spread across 4 nodes

    def test_load_is_roughly_balanced(self):
        grid = PartitionedMatcher(query_partitions=4, object_partitions=4)
        populate(grid, n_queries=200)
        self.run_stream(grid, n_events=500)
        assert grid.load_imbalance() < 2.5

    def test_empty_grid_imbalance_is_one(self):
        grid = PartitionedMatcher(query_partitions=4)
        assert grid.load_imbalance() == 1.0
