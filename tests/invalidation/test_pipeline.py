"""Integration tests for the invalidation pipeline."""

import pytest

from repro.cdn import Cdn
from repro.http import Headers, Request, URL
from repro.invalidation import InvalidationPipeline, VariantIndex
from repro.origin import (
    Eq,
    OriginServer,
    PersonalizationKind,
    Query,
    ResourceKind,
    ResourceSpec,
    Site,
)
from repro.origin.server import SEGMENT_PARAM
from repro.sim import Environment
from repro.sketch import ServerCacheSketch
from repro.ttl import AdaptiveTtlPolicy


def build_site():
    site = Site()
    site.add_route(
        ResourceSpec(
            name="product-page",
            pattern="/product/{id}",
            kind=ResourceKind.PAGE,
            personalization=PersonalizationKind.SEGMENT,
            doc_keys=lambda p: [f"products/{p['id']}"],
        )
    )
    site.add_route(
        ResourceSpec(
            name="category",
            pattern="/category/{name}",
            kind=ResourceKind.QUERY,
            query=lambda p: Query("products", Eq("category", p["name"])),
        )
    )
    site.store.put("products", "1", {"category": "shoes", "price": 10})
    site.store.put("products", "2", {"category": "hats", "price": 7})
    return site


@pytest.fixture
def stack():
    env = Environment()
    site = build_site()
    server = OriginServer(site)
    cdn = Cdn(["pop-1", "pop-2"])
    sketch = ServerCacheSketch(capacity=1000)
    pipeline = InvalidationPipeline(
        env,
        server,
        cdn=cdn,
        sketch=sketch,
        detection_latency=0.02,
        purge_latency=0.10,
    )
    return env, server, cdn, sketch, pipeline


def serve_and_cache(server, cdn, path, now, pop="pop-1"):
    """Simulate a CDN-mediated fetch: origin render + edge admission."""
    request = Request.get(URL.parse(path))
    response = server.handle(request, now)
    cdn.pop(pop).admit(request, response, now)
    return request, response


class TestVariantIndex:
    def test_version_key_is_always_included(self):
        index = VariantIndex()
        assert index.variants_of("base") == {"base"}

    def test_registered_variants_accumulate(self):
        index = VariantIndex()
        index.register("base", "base?sk_segment=a")
        index.register("base", "base?sk_segment=b")
        assert index.variants_of("base") == {
            "base",
            "base?sk_segment=a",
            "base?sk_segment=b",
        }
        assert index.variant_count("base") == 3


class TestPipeline:
    def test_write_purges_cdn_after_latency(self, stack):
        env, server, cdn, sketch, pipeline = stack
        request, _ = serve_and_cache(server, cdn, "/product/1", now=0.0)
        env.run(until=1.0)
        server.update("products", "1", {"price": 11}, at=env.now)
        # Before the purge latency elapses the CDN still has the entry.
        env.run(until=1.05)
        assert cdn.pop("pop-1").serve(request, env.now) is not None
        env.run(until=1.2)
        assert cdn.pop("pop-1").serve(request, env.now) is None

    def test_write_lands_in_sketch_after_detection(self, stack):
        env, server, cdn, sketch, pipeline = stack
        request, _ = serve_and_cache(server, cdn, "/product/1", now=0.0)
        key = request.url.cache_key()
        env.run(until=1.0)
        server.update("products", "1", {"price": 11}, at=env.now)
        env.run(until=1.01)
        assert not sketch.contains(key, env.now)
        env.run(until=1.05)
        assert sketch.contains(key, env.now)

    def test_segment_variants_are_all_purged(self, stack):
        env, server, cdn, sketch, pipeline = stack
        base_req, _ = serve_and_cache(server, cdn, "/product/1", now=0.0)
        seg_req, _ = serve_and_cache(
            server, cdn, f"/product/1?{SEGMENT_PARAM}=s2", now=0.0
        )
        server.update("products", "1", {"price": 11}, at=1.0)
        env.run(until=2.0)
        assert cdn.pop("pop-1").serve(base_req, env.now) is None
        assert cdn.pop("pop-1").serve(seg_req, env.now) is None

    def test_query_resource_invalidated_by_entering_document(self, stack):
        env, server, cdn, sketch, pipeline = stack
        request, _ = serve_and_cache(server, cdn, "/category/shoes", now=0.0)
        # p2 (a hat) becomes a shoe: the shoes listing changed.
        server.write("products", "2", {"category": "shoes", "price": 7}, at=1.0)
        env.run(until=2.0)
        assert cdn.pop("pop-1").serve(request, env.now) is None
        assert sketch.contains(request.url.cache_key(), env.now)

    def test_unrelated_write_is_a_no_op(self, stack):
        env, server, cdn, sketch, pipeline = stack
        request, _ = serve_and_cache(server, cdn, "/product/1", now=0.0)
        server.write("products", "99", {"category": "socks"}, at=1.0)
        env.run(until=2.0)
        assert cdn.pop("pop-1").serve(request, env.now) is not None
        assert (
            pipeline.metrics.get_counter("invalidation.no_op_changes").value
            == 1
        )

    def test_latency_metrics_recorded(self, stack):
        env, server, cdn, sketch, pipeline = stack
        serve_and_cache(server, cdn, "/product/1", now=0.0)
        env.run(until=1.0)
        server.update("products", "1", {"price": 11}, at=env.now)
        env.run(until=2.0)
        sketch_lat = pipeline.metrics.histogram("invalidation.sketch_latency")
        purge_lat = pipeline.metrics.histogram("invalidation.purge_latency")
        assert sketch_lat.mean() == pytest.approx(0.02)
        assert purge_lat.mean() == pytest.approx(0.10)

    def test_write_without_cached_copy_not_in_sketch(self, stack):
        env, server, cdn, sketch, pipeline = stack
        # Origin renders but with no-store policy nothing was cacheable?
        # Here: page IS cacheable but never served, so no read reported.
        server.update("products", "1", {"price": 11}, at=1.0)
        env.run(until=2.0)
        key = URL.parse("/product/1").cache_key()
        assert not sketch.contains(key, env.now)

    def test_purges_fan_out_to_all_pops(self, stack):
        env, server, cdn, sketch, pipeline = stack
        req1, _ = serve_and_cache(server, cdn, "/product/1", 0.0, pop="pop-1")
        req2, _ = serve_and_cache(server, cdn, "/product/1", 0.0, pop="pop-2")
        server.update("products", "1", {"price": 11}, at=1.0)
        env.run(until=2.0)
        assert cdn.pop("pop-1").serve(req1, env.now) is None
        assert cdn.pop("pop-2").serve(req2, env.now) is None

    def test_adaptive_policy_learns_from_pipeline(self):
        env = Environment()
        site = build_site()
        policy = AdaptiveTtlPolicy()
        server = OriginServer(site, ttl_policy=policy)
        pipeline = InvalidationPipeline(env, server)
        request = Request.get(URL.parse("/product/1"))
        server.handle(request, 0.0)
        server.update("products", "1", {"price": 11}, at=10.0)
        server.update("products", "1", {"price": 12}, at=20.0)
        env.run(until=30.0)
        key = server.version_key_for(request.url)
        stats = policy.estimator.stats_for(key)
        assert stats is not None
        assert stats.writes == 2

    def test_latency_ordering_validated(self):
        env = Environment()
        server = OriginServer(build_site())
        with pytest.raises(ValueError):
            InvalidationPipeline(
                env, server, detection_latency=0.5, purge_latency=0.1
            )
