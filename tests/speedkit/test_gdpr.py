"""Tests for the GDPR layer: vault, consent, scrubbing."""

from repro.http import Headers, Request, URL
from repro.speedkit import ConsentManager, PiiVault, Purpose, RequestScrubber


class TestPiiVault:
    def test_identity_lifecycle(self):
        vault = PiiVault()
        assert not vault.has_identity
        vault.set_identity("u42")
        assert vault.has_identity
        assert vault.identity_for_first_party() == "u42"

    def test_clear_identity_erases_everything(self):
        vault = PiiVault(user_id="u42", attributes={"tier": "gold"})
        vault.clear_identity()
        assert not vault.has_identity
        assert vault.attribute("tier") is None

    def test_attributes(self):
        vault = PiiVault()
        vault.set_attribute("locale", "de")
        assert vault.attribute("locale") == "de"
        assert vault.attribute("missing", "fallback") == "fallback"

    def test_segmentation_view_is_a_copy(self):
        vault = PiiVault(attributes={"tier": "gold"})
        view = vault.attributes_for_segmentation()
        view["tier"] = "hacked"
        assert vault.attribute("tier") == "gold"


class TestConsentManager:
    def test_default_denies(self):
        consent = ConsentManager()
        assert not consent.allows(Purpose.ACCELERATION)

    def test_grant_and_revoke(self):
        consent = ConsentManager()
        consent.grant(Purpose.ACCELERATION)
        assert consent.allows(Purpose.ACCELERATION)
        consent.revoke(Purpose.ACCELERATION)
        assert not consent.allows(Purpose.ACCELERATION)
        assert consent.changes == [
            (Purpose.ACCELERATION, True),
            (Purpose.ACCELERATION, False),
        ]

    def test_factories(self):
        assert ConsentManager.all_granted().allows(Purpose.SEGMENTATION)
        assert not ConsentManager.none_granted().allows(
            Purpose.SEGMENTATION
        )


class TestRequestScrubber:
    def scrub(self, headers=None, params=None):
        scrubber = RequestScrubber()
        request = Request.get(
            URL.of("/p", params or {}), headers=Headers(headers or {})
        )
        return scrubber.scrub(request)

    def test_cookie_header_removed(self):
        cleaned, report = self.scrub(headers={"Cookie": "session=u42"})
        assert "Cookie" not in cleaned.headers
        assert report.removed_headers == ["Cookie"]

    def test_authorization_removed_case_insensitive(self):
        cleaned, report = self.scrub(headers={"AUTHORIZATION": "Bearer x"})
        assert len(cleaned.headers) == 0

    def test_benign_headers_survive(self):
        cleaned, report = self.scrub(headers={"Accept": "text/html"})
        assert cleaned.headers["Accept"] == "text/html"
        assert not report.anything_removed

    def test_identifying_params_removed(self):
        cleaned, report = self.scrub(params={"userid": "42", "color": "red"})
        assert cleaned.url.params == {"color": "red"}
        assert report.removed_params == ["userid"]

    def test_email_value_detected_anywhere(self):
        cleaned, report = self.scrub(params={"q": "jane@example.com"})
        assert "q" not in cleaned.url.params

    def test_opaque_token_value_detected(self):
        token = "a" * 40
        cleaned, report = self.scrub(headers={"X-Custom": token})
        assert "X-Custom" not in cleaned.headers

    def test_short_values_are_not_tokens(self):
        cleaned, report = self.scrub(params={"q": "shoes"})
        assert cleaned.url.params == {"q": "shoes"}

    def test_original_request_is_untouched(self):
        scrubber = RequestScrubber()
        request = Request.get(
            URL.of("/p", {"session": "x"}),
            headers=Headers({"Cookie": "session=u42"}),
        )
        scrubber.scrub(request)
        assert request.headers["Cookie"] == "session=u42"
        assert request.url.params == {"session": "x"}

    def test_audit_log_accumulates(self):
        scrubber = RequestScrubber()
        scrubber.scrub(Request.get(URL.of("/a")))
        scrubber.scrub(
            Request.get(URL.of("/b"), headers=Headers({"Cookie": "s=1"}))
        )
        assert len(scrubber.audit_log) == 2
        assert not scrubber.audit_log[0].anything_removed
        assert scrubber.audit_log[1].anything_removed

    def test_custom_denylists(self):
        scrubber = RequestScrubber(
            header_denylist=("x-tracking",), param_denylist=("ref",)
        )
        request = Request.get(
            URL.of("/p", {"ref": "mail"}),
            headers=Headers({"X-Tracking": "1", "Cookie": "s=1"}),
        )
        cleaned, report = scrubber.scrub(request)
        # Cookie survives (not on the custom list, not an opaque token).
        assert "Cookie" in cleaned.headers
        assert "X-Tracking" not in cleaned.headers
        assert "ref" not in cleaned.url.params
