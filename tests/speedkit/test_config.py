"""Tests for routing rules and configuration."""

import pytest

from repro.http import Method, Request, URL
from repro.speedkit import RoutingRules, SpeedKitConfig


def get(path):
    return Request.get(URL.parse(path))


def post(path):
    return Request(method=Method.POST, url=URL.parse(path))


class TestRoutingRules:
    def test_empty_rules_accelerate_all_safe_requests(self):
        rules = RoutingRules()
        assert rules.should_accelerate(get("/anything"))

    def test_unsafe_methods_never_accelerated(self):
        rules = RoutingRules()
        assert not rules.should_accelerate(post("/anything"))

    def test_whitelist_restricts(self):
        rules = RoutingRules(whitelist=["/product/*", "/static/*"])
        assert rules.should_accelerate(get("/product/42"))
        assert rules.should_accelerate(get("/static/app.js"))
        assert not rules.should_accelerate(get("/checkout"))

    def test_blacklist_wins_over_whitelist(self):
        rules = RoutingRules(
            whitelist=["/product/*"], blacklist=["/product/secret*"]
        )
        assert rules.should_accelerate(get("/product/42"))
        assert not rules.should_accelerate(get("/product/secret-sale"))

    def test_blacklist_alone(self):
        rules = RoutingRules(blacklist=["/account*"])
        assert rules.should_accelerate(get("/product/1"))
        assert not rules.should_accelerate(get("/account/settings"))


class TestSpeedKitConfig:
    def test_refresh_interval_validation(self):
        with pytest.raises(ValueError):
            SpeedKitConfig(sketch_refresh_interval=0.0)

    def test_personalization_classification(self):
        config = SpeedKitConfig(
            segment_personalized=["/product/*"],
            user_personalized=["/api/blocks/*"],
        )
        assert config.is_segment_personalized(get("/product/1"))
        assert not config.is_segment_personalized(get("/static/a.js"))
        assert config.is_user_personalized(get("/api/blocks/cart"))
        assert not config.is_user_personalized(get("/product/1"))

    def test_ecommerce_default_shape(self):
        config = SpeedKitConfig.ecommerce_default()
        assert config.rules.should_accelerate(get("/product/42"))
        assert not config.rules.should_accelerate(get("/checkout/pay"))
        assert config.is_user_personalized(get("/api/blocks/cart"))
        assert config.is_segment_personalized(get("/category/shoes"))
