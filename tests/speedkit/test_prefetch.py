"""Tests for the navigation predictor and background prefetcher."""

import pytest

from repro.http import Request, URL
from repro.speedkit import NavigationPredictor, Prefetcher
from repro.speedkit.prefetch import url_for_state

from tests.speedkit.conftest import run


class TestNavigationPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            NavigationPredictor(max_predictions=0)

    def test_no_history_no_predictions(self):
        predictor = NavigationPredictor()
        assert predictor.predict("home:") == []

    def test_transition_probabilities(self):
        predictor = NavigationPredictor()
        for _ in range(3):
            predictor.observe("home:", "category:shoes")
        predictor.observe("home:", "product:p1")
        predictions = dict(predictor.predict("home:"))
        assert predictions["category:shoes"] == pytest.approx(0.75)
        assert predictions["product:p1"] == pytest.approx(0.25)

    def test_first_navigation_has_no_previous(self):
        predictor = NavigationPredictor()
        predictor.observe(None, "home:")
        assert predictor.observations == 1
        assert predictor.predict("home:") == []

    def test_max_predictions_cap(self):
        predictor = NavigationPredictor(max_predictions=2)
        for target in ("a", "b", "c", "d"):
            predictor.observe("home:", f"product:{target}")
        assert len(predictor.predict("home:")) == 2


class TestUrlForState:
    def test_known_states(self):
        assert url_for_state("home:").path == "/"
        assert url_for_state("category:shoes").path == "/category/shoes"
        assert url_for_state("product:p7").path == "/product/p7"

    def test_unknown_states(self):
        assert url_for_state("mystery:x") is None
        assert url_for_state("category:") is None


class TestPrefetcher:
    def test_validation(self, make_worker):
        worker = make_worker()
        with pytest.raises(ValueError):
            Prefetcher(worker, NavigationPredictor(), min_confidence=1.5)

    def test_prefetch_warms_sw_cache(self, env, make_worker):
        worker = make_worker()
        predictor = NavigationPredictor()
        # Train: from product p1 people overwhelmingly go to p2.
        for _ in range(5):
            predictor.observe("product:1", "product:2")
        prefetcher = Prefetcher(worker, predictor)

        prefetcher.on_navigation("product", "1")
        env.run(until=env.now + 5.0)  # let the background fetch finish
        assert prefetcher.prefetches_issued == 1
        # The predicted page is now served from the SW cache instantly.
        start = env.now
        response = run(env, worker.fetch(Request.get(URL.parse("/product/2"))))
        assert response.served_by == "sw:client"
        assert env.now == start

    def test_low_confidence_not_prefetched(self, env, make_worker):
        worker = make_worker()
        predictor = NavigationPredictor()
        for target in ("2", "3", "4", "5", "6", "7"):
            predictor.observe("product:1", f"product:{target}")
        prefetcher = Prefetcher(worker, predictor, min_confidence=0.5)
        prefetcher.on_navigation("product", "1")
        assert prefetcher.prefetches_issued == 0

    def test_navigation_chain_trains_model(self, env, make_worker):
        worker = make_worker()
        prefetcher = Prefetcher(worker, NavigationPredictor())
        prefetcher.on_navigation("home", "")
        prefetcher.on_navigation("category", "shoes")
        prefetcher.on_navigation("product", "1")
        env.run(until=env.now + 5.0)
        predictions = prefetcher.predictor.predict("home:")
        assert predictions[0][0] == "category:shoes"
