"""Tests for offline resilience and stale-while-revalidate serving."""

import random

import pytest

from repro.browser import Transport
from repro.http import Request, Status, URL
from repro.simnet import FaultSchedule
from repro.simnet.topology import two_tier
from repro.speedkit import SpeedKitConfig

from tests.speedkit.conftest import run


def get(path):
    return Request.get(URL.parse(path))


@pytest.fixture
def faulty_transport(env, topology, backend):
    transport = Transport(
        env, topology, backend.server, random.Random(0)
    )
    transport.faults = FaultSchedule()
    return transport


@pytest.fixture
def make_faulty_worker(make_worker, faulty_transport):
    def factory(**kwargs):
        worker = make_worker(**kwargs)
        worker.transport = faulty_transport
        worker.fallback.transport = faulty_transport
        return worker

    return factory


class TestOfflineMode:
    def test_cached_copy_served_through_outage(
        self, env, make_faulty_worker, faulty_transport
    ):
        worker = make_faulty_worker()
        response = run(env, worker.fetch(get("/static/app.js")))
        assert response.status == Status.OK
        # Origin goes dark; the copy's TTL is irrelevant (immutable).
        faulty_transport.faults.add_outage("origin", env.now, env.now + 3600)
        response = run(env, worker.fetch(get("/static/app.js")))
        assert response.status == Status.OK
        assert response.served_by == "sw:client"

    def test_flagged_entry_still_served_when_origin_down(
        self, env, make_faulty_worker, faulty_transport, backend
    ):
        worker = make_faulty_worker()
        run(env, worker.fetch(get("/product/1")))
        # Flag the product as stale and refresh the client sketch.
        backend.server.update("products", "1", {"price": 99}, at=env.now)
        env.run(until=env.now + 1.0)
        run(env, worker.sketch_client.fetch_once())
        # Now the origin dies: revalidation fails -> serve stale copy.
        faulty_transport.faults.add_outage("origin", env.now, env.now + 3600)
        response = run(env, worker.fetch(get("/product/1")))
        assert response.status == Status.OK
        assert response.version == 1  # the stale-but-usable copy
        assert (
            worker.metrics.counter("speedkit.client.offline_served").value
            >= 1
        )

    def test_without_offline_mode_error_propagates(
        self, env, make_faulty_worker, faulty_transport, config
    ):
        config.offline_mode = False
        worker = make_faulty_worker()
        run(env, worker.fetch(get("/product/1")))
        faulty_transport.faults.add_outage("origin", env.now, env.now + 3600)
        # Expire the SW copy so a revalidation is forced.
        env.run(until=env.now + 400.0)
        response = run(env, worker.fetch(get("/product/1")))
        assert response.status == Status.SERVICE_UNAVAILABLE

    def test_uncached_resource_fails_during_outage(
        self, env, make_faulty_worker, faulty_transport
    ):
        worker = make_faulty_worker()
        faulty_transport.faults.add_outage("origin", 0.0, 3600.0)
        response = run(env, worker.fetch(get("/product/2")))
        assert response.status == Status.SERVICE_UNAVAILABLE


class TestSketchServiceOutage:
    def test_fetch_once_fails_gracefully(self, env, backend, topology):
        import random as random_module

        from repro.coherence import SketchClient

        faults = FaultSchedule.origin_outage(0.0, 3600.0)
        client = SketchClient(
            env,
            backend.sketch,
            topology,
            "client",
            random_module.Random(0),
            faults=faults,
        )
        process = env.process(client.fetch_once())
        while not process.triggered:
            env.step()
        assert process.value is None
        assert client.current is None
        assert client.stats.failures == 1
        assert client.stats.fetches == 0

    def test_degraded_serving_marked_offline(
        self, env, make_faulty_worker, faulty_transport
    ):
        worker = make_faulty_worker()
        worker.sketch_client.faults = faulty_transport.faults
        run(env, worker.fetch(get("/static/app.js")))
        # Now everything (incl. the sketch service) goes down; the
        # worker's sketch ages past Δ.
        faulty_transport.faults.add_outage("origin", env.now, env.now + 7200)
        env.run(until=env.now + 120.0)  # sketch now stale (> Δ = 60)
        response = run(env, worker.fetch(get("/static/app.js")))
        assert response.status == Status.OK
        assert "X-SpeedKit-Offline" in response.headers
        assert (
            worker.metrics.counter("speedkit.client.offline_served").value
            >= 1
        )

    def test_degraded_serving_disabled_without_offline_mode(
        self, env, make_faulty_worker, faulty_transport, config, backend
    ):
        config.offline_mode = False
        worker = make_faulty_worker()
        worker.sketch_client.faults = faulty_transport.faults
        run(env, worker.fetch(get("/static/app.js")))
        faulty_transport.faults.add_outage("origin", env.now, env.now + 7200)
        env.run(until=env.now + 120.0)  # sketch now stale (> Δ = 60)
        # A live edge could still answer the revalidation; empty it so
        # strict mode has to reach the (dead) origin.
        backend.cdn.purge_all()
        response = run(env, worker.fetch(get("/static/app.js")))
        # Strict mode revalidates; the origin is down -> failure.
        assert response.status == Status.SERVICE_UNAVAILABLE


class TestStaleWhileRevalidate:
    def test_flagged_entry_served_instantly_then_refreshed(
        self, env, make_worker, backend, config
    ):
        config.stale_while_revalidate = True
        worker = make_worker()
        run(env, worker.fetch(get("/product/1")))
        backend.server.update("products", "1", {"price": 99}, at=env.now)
        env.run(until=env.now + 1.0)
        run(env, worker.sketch_client.fetch_once())

        start = env.now
        response = run(env, worker.fetch(get("/product/1")))
        # Served instantly from cache (stale), not revalidated inline.
        assert env.now == start
        assert response.version == 1
        assert (
            worker.metrics.counter("speedkit.client.swr_served").value == 1
        )
        # The background refresh lands shortly after.
        env.run(until=env.now + 5.0)
        refreshed = worker.cache.serve_even_stale(
            Request.get(
                URL.parse("/product/1").with_param("sk_segment", "gold|de")
            ),
            env.now,
        )
        assert refreshed.version == 2

    def test_swr_disabled_by_default(self, env, make_worker, backend):
        worker = make_worker()
        run(env, worker.fetch(get("/product/1")))
        backend.server.update("products", "1", {"price": 99}, at=env.now)
        env.run(until=env.now + 1.0)
        run(env, worker.sketch_client.fetch_once())
        response = run(env, worker.fetch(get("/product/1")))
        # Inline revalidation: new version immediately.
        assert response.version == 2
