"""Integration tests for the service worker proxy."""

import json

import pytest

from repro.http import Headers, Method, Request, Status, URL
from repro.origin.server import SEGMENT_PARAM
from repro.speedkit import ConsentManager

from tests.speedkit.conftest import run


def get(path, headers=None):
    return Request.get(URL.parse(path), headers=Headers(headers or {}))


class TestRouting:
    def test_without_consent_everything_passes_through(
        self, env, make_worker
    ):
        worker = make_worker(consent=ConsentManager.none_granted())
        response = run(env, worker.fetch(get("/product/1")))
        assert response.served_by == "origin"
        # Nothing was cached in the SW.
        assert len(worker.cache.store) == 0
        assert (
            worker.metrics.counter("speedkit.client.pass_through").value == 1
        )

    def test_unsafe_method_passes_through(self, env, make_worker, backend):
        worker = make_worker()
        request = Request(
            method=Method.POST,
            url=URL.parse("/api/documents/products/99"),
            body={"category": "shoes", "price": 1},
        )
        response = run(env, worker.fetch(request))
        assert response.status == Status.OK
        assert backend.site.store.get("products", "99") is not None

    def test_accelerated_request_counted(self, env, make_worker):
        worker = make_worker()
        run(env, worker.fetch(get("/static/app.js")))
        assert (
            worker.metrics.counter("speedkit.client.accelerated").value == 1
        )


class TestGdprBehaviour:
    def test_cookie_never_reaches_shared_infrastructure(
        self, env, make_worker, backend
    ):
        seen_user_ids = []
        original = backend.server._user_identity

        def spy(request):
            identity = original(request)
            seen_user_ids.append(identity)
            return identity

        backend.server._user_identity = spy
        worker = make_worker()
        run(
            env,
            worker.fetch(get("/product/1", {"Cookie": "session=u1"})),
        )
        # The origin received the accelerated request anonymously.
        assert seen_user_ids == [None]
        assert (
            worker.metrics.counter("speedkit.client.scrubbed").value == 1
        )

    def test_user_block_carries_credentials_directly(
        self, env, make_worker, backend
    ):
        worker = make_worker(user_id="u7")
        backend.server.write("carts", "u7", {"items": [1, 2, 3]}, at=0.0)
        response = run(env, worker.fetch(get("/api/blocks/cart")))
        body = json.loads(response.body)
        assert body["user"] == "u7"
        assert body["cart"] == {"items": [1, 2, 3]}
        # Served by the origin directly, not via the CDN.
        assert response.served_by == "origin"
        assert len(backend.cdn.pop("edge").store) == 0

    def test_user_block_is_never_cached(self, env, make_worker):
        worker = make_worker(user_id="u7")
        run(env, worker.fetch(get("/api/blocks/cart")))
        assert len(worker.cache.store) == 0


class TestSegmentVariants:
    def test_segment_param_attached(self, env, make_worker, backend):
        worker = make_worker(attrs={"tier": "gold", "locale": "de"})
        response = run(env, worker.fetch(get("/product/1")))
        assert response.url.params[SEGMENT_PARAM] == "gold|de"
        body = json.loads(response.body)
        assert body["segment"] == "gold|de"

    def test_same_segment_shares_cdn_entry(self, env, make_worker, backend):
        gold_a = make_worker(user_id="a", attrs={"tier": "gold", "locale": "de"})
        gold_b = make_worker(user_id="b", attrs={"tier": "gold", "locale": "de"})
        run(env, gold_a.fetch(get("/product/1")))
        response = run(env, gold_b.fetch(get("/product/1")))
        assert response.served_by == "edge"

    def test_different_segments_get_different_variants(
        self, env, make_worker, backend
    ):
        gold = make_worker(user_id="a", attrs={"tier": "gold", "locale": "de"})
        standard = make_worker(
            user_id="b", attrs={"tier": "standard", "locale": "en"}
        )
        run(env, gold.fetch(get("/product/1")))
        response = run(env, standard.fetch(get("/product/1")))
        # The standard user's variant was not in the CDN yet.
        assert response.served_by == "origin"


class TestCachingAndCoherence:
    def test_second_fetch_served_from_sw_cache(self, env, make_worker):
        worker = make_worker()
        run(env, worker.fetch(get("/static/app.js")))
        start = env.now
        response = run(env, worker.fetch(get("/static/app.js")))
        assert response.served_by == "sw:client"
        assert env.now == start

    def test_write_triggers_revalidation_after_sketch_refresh(
        self, env, make_worker, backend
    ):
        worker = make_worker()
        run(env, worker.fetch(get("/product/1")))
        first = run(env, worker.fetch(get("/product/1")))
        assert first.served_by == "sw:client"
        assert first.version == 1
        # The product changes; pipeline adds it to the sketch + purges.
        backend.server.update("products", "1", {"price": 99}, at=env.now)
        env.run(until=env.now + 1.0)
        # Force a sketch refresh (simulating the next Δ tick).
        run(env, worker.sketch_client.fetch_once())
        response = run(env, worker.fetch(get("/product/1")))
        assert response.version == 2

    def test_stale_read_bounded_by_delta(
        self, env, make_worker, backend, checker
    ):
        worker = make_worker()
        run(env, worker.fetch(get("/product/1")))
        backend.server.update("products", "1", {"price": 99}, at=env.now)
        env.run(until=env.now + 1.0)
        # Sketch NOT refreshed: the SW may serve the stale copy...
        response = run(env, worker.fetch(get("/product/1")))
        checker.record_read(response, env.now)
        # ...but within the Δ bound, so no violation.
        checker.assert_delta_atomic()

    def test_full_session_is_delta_atomic(
        self, env, make_worker, backend, checker
    ):
        worker = make_worker(refresh_interval=10.0)
        worker.sketch_client.start_periodic_refresh()
        paths = ["/product/1", "/product/2", "/category/shoes"]
        for round_index in range(30):
            for path in paths:
                response = run(env, worker.fetch(get(path)))
                checker.record_read(response, env.now)
            if round_index % 3 == 0:
                backend.server.update(
                    "products",
                    str(round_index % 5),
                    {"price": round_index, "category": "shoes"},
                    at=env.now,
                )
            env.run(until=env.now + 7.0)
        assert checker.read_count == 90
        checker.assert_delta_atomic()

    def test_sketch_fetched_lazily_when_missing(self, env, make_worker):
        worker = make_worker()
        assert worker.sketch_client.current is None
        run(env, worker.fetch(get("/product/1")))
        assert worker.sketch_client.current is not None

    def test_on_navigate_prefetches_sketch(self, env, make_worker):
        worker = make_worker()
        run(env, worker.on_navigate())
        assert worker.sketch_client.stats.fetches == 1
        # A second navigation within Δ does not refetch.
        run(env, worker.on_navigate())
        assert worker.sketch_client.stats.fetches == 1

    def test_on_navigate_skips_without_consent(self, env, make_worker):
        worker = make_worker(consent=ConsentManager.none_granted())
        run(env, worker.on_navigate())
        assert worker.sketch_client.stats.fetches == 0

    def test_false_positive_only_costs_a_revalidation(
        self, env, make_worker, backend
    ):
        worker = make_worker()
        run(env, worker.fetch(get("/static/app.js")))
        # Manufacture a sketch that (falsely) flags the asset.
        key = str(
            URL.parse("/static/app.js")
        )
        backend.sketch.report_read(key, expires_at=10**9, now=env.now)
        backend.sketch.report_write(key, now=env.now)
        run(env, worker.sketch_client.fetch_once())
        response = run(env, worker.fetch(get("/static/app.js")))
        # Revalidated (304 path) — correct content, one extra round trip.
        assert response.status == Status.OK
        assert response.version == 1
        assert (
            worker.metrics.counter("speedkit.client.revalidations").value
            == 1
        )
