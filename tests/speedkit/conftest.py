"""A full client+server Speed Kit stack for worker integration tests."""

import random

import pytest

from repro.browser import Transport
from repro.coherence import DeltaAtomicityChecker, SketchClient
from repro.origin import (
    Eq,
    PersonalizationKind,
    Query,
    ResourceKind,
    ResourceSpec,
    Site,
)
from repro.sim import Environment
from repro.simnet.topology import two_tier
from repro.speedkit import (
    ConsentManager,
    PiiVault,
    SegmentResolver,
    SegmentScheme,
    ServiceWorkerProxy,
    SpeedKitBackend,
    SpeedKitConfig,
)

CLIENT_EDGE = 0.01
EDGE_ORIGIN = 0.04
CLIENT_ORIGIN = 0.05


def build_site():
    site = Site()
    site.add_route(
        ResourceSpec(
            name="asset",
            pattern="/static/{name}",
            kind=ResourceKind.STATIC,
            doc_keys=lambda p: [f"assets/{p['name']}"],
            size_bytes=40_000,
        )
    )
    site.add_route(
        ResourceSpec(
            name="product",
            pattern="/product/{id}",
            kind=ResourceKind.PAGE,
            personalization=PersonalizationKind.SEGMENT,
            doc_keys=lambda p: [f"products/{p['id']}"],
            size_bytes=20_000,
        )
    )
    site.add_route(
        ResourceSpec(
            name="category",
            pattern="/category/{name}",
            kind=ResourceKind.QUERY,
            query=lambda p: Query("products", Eq("category", p["name"])),
            size_bytes=15_000,
        )
    )
    site.add_route(
        ResourceSpec(
            name="cart",
            pattern="/api/blocks/cart",
            kind=ResourceKind.FRAGMENT,
            personalization=PersonalizationKind.USER,
            size_bytes=2_000,
        )
    )
    site.add_route(
        ResourceSpec(
            name="checkout",
            pattern="/checkout",
            kind=ResourceKind.PAGE,
            personalization=PersonalizationKind.USER,
            size_bytes=10_000,
        )
    )
    for i in range(10):
        site.store.put(
            "products",
            str(i),
            {"category": "shoes" if i % 2 == 0 else "hats", "price": 10 + i},
        )
    for name in ("app.js", "style.css"):
        site.store.put("assets", name, {"name": name})
    return site


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def backend(env):
    return SpeedKitBackend(
        env,
        build_site(),
        pop_names=["edge"],
        detection_latency=0.02,
        purge_latency=0.08,
    )


@pytest.fixture
def topology():
    return two_tier(
        client_edge_delay=CLIENT_EDGE,
        edge_origin_delay=EDGE_ORIGIN,
        client_origin_delay=CLIENT_ORIGIN,
    )


@pytest.fixture
def transport(env, topology, backend):
    return Transport(env, topology, backend.server, random.Random(0))


@pytest.fixture
def config():
    return SpeedKitConfig(
        sketch_refresh_interval=60.0,
        segment_personalized=["/product/*", "/category/*"],
        user_personalized=["/api/blocks/*"],
    )


@pytest.fixture
def make_worker(env, backend, topology, transport, config):
    def factory(
        user_id="u1",
        attrs=None,
        consent=None,
        worker_config=None,
        refresh_interval=None,
    ):
        cfg = worker_config or config
        vault = PiiVault(
            user_id=user_id,
            attributes=attrs or {"tier": "gold", "locale": "de"},
        )
        consent_manager = consent or ConsentManager.all_granted()
        sketch_client = SketchClient(
            env,
            backend.sketch,
            topology,
            client_node="client",
            rng=random.Random(1),
            refresh_interval=refresh_interval
            or cfg.sketch_refresh_interval,
        )
        return ServiceWorkerProxy(
            node="client",
            transport=transport,
            cdn=backend.cdn,
            config=cfg,
            vault=vault,
            consent=consent_manager,
            segments=SegmentResolver(
                SegmentScheme.ecommerce_default(), vault, consent_manager
            ),
            sketch_client=sketch_client,
        )

    return factory


@pytest.fixture
def checker(backend):
    return DeltaAtomicityChecker(backend.server, delta=61.0)


def run(env, generator):
    """Drive one sub-process to completion even while background
    processes (e.g. the periodic sketch refresh) stay alive."""
    process = env.process(generator)
    while not process.triggered:
        env.step()
    if not process.ok:
        raise process.value
    return process.value
