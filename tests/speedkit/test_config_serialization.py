"""Tests for config (de)serialization."""

import json

import pytest

from repro.speedkit import SpeedKitConfig


def test_round_trip_default():
    config = SpeedKitConfig.ecommerce_default()
    restored = SpeedKitConfig.from_dict(config.to_dict())
    assert restored.to_dict() == config.to_dict()
    assert restored.rules.whitelist == config.rules.whitelist
    assert restored.sketch_refresh_interval == (
        config.sketch_refresh_interval
    )


def test_round_trip_through_json():
    config = SpeedKitConfig.ecommerce_default()
    config.stale_while_revalidate = True
    config.swr_staleness_budget = 90.0
    text = json.dumps(config.to_dict())
    restored = SpeedKitConfig.from_dict(json.loads(text))
    assert restored.stale_while_revalidate
    assert restored.swr_staleness_budget == 90.0


def test_minimal_dict_uses_defaults():
    config = SpeedKitConfig.from_dict({"whitelist": ["/shop/*"]})
    assert config.rules.whitelist == ["/shop/*"]
    assert config.sketch_refresh_interval == 60.0
    assert config.offline_mode


def test_unknown_keys_rejected():
    with pytest.raises(ValueError, match="unknown config keys"):
        SpeedKitConfig.from_dict({"whitelst": ["/typo/*"]})


def test_invalid_values_still_validated():
    with pytest.raises(ValueError):
        SpeedKitConfig.from_dict({"sketch_refresh_interval": 0.0})
