"""Tests for bounded stale-if-error serving at the service worker."""

import random

import pytest

from repro.browser import Transport
from repro.http import Request, Status, URL
from repro.simnet import FaultSchedule

from tests.speedkit.conftest import run


def get(path):
    return Request.get(URL.parse(path))


@pytest.fixture
def faulty_transport(env, topology, backend):
    transport = Transport(env, topology, backend.server, random.Random(0))
    transport.faults = FaultSchedule()
    return transport


@pytest.fixture
def make_faulty_worker(make_worker, faulty_transport):
    def factory(**kwargs):
        worker = make_worker(**kwargs)
        worker.transport = faulty_transport
        worker.fallback.transport = faulty_transport
        return worker

    return factory


def warm_flag_and_kill(env, worker, backend, faulty_transport):
    """Cache /product/1, flag it stale, then take the origin down."""
    run(env, worker.fetch(get("/product/1")))
    backend.server.update("products", "1", {"price": 99}, at=env.now)
    env.run(until=env.now + 1.0)
    run(env, worker.sketch_client.fetch_once())
    faulty_transport.faults.add_outage("origin", env.now, env.now + 7200)


class TestBoundedDegradedServing:
    def test_stale_if_error_preferred_over_offline(
        self, env, make_faulty_worker, faulty_transport, backend, config
    ):
        config.stale_if_error_window = 60.0
        worker = make_faulty_worker()
        warm_flag_and_kill(env, worker, backend, faulty_transport)
        response = run(env, worker.fetch(get("/product/1")))
        assert response.status == Status.OK
        assert response.version == 1  # the verified-recently copy
        # Bounded serving wins over the unbounded offline ladder rung.
        assert response.headers.get("X-Stale-If-Error") == "1"
        assert response.headers.get("X-SpeedKit-Offline") is None
        assert (
            worker.metrics.counter(
                "speedkit.client.stale_if_error_served"
            ).value
            == 1
        )

    def test_outside_window_falls_back_to_offline(
        self, env, make_faulty_worker, faulty_transport, backend, config
    ):
        config.stale_if_error_window = 60.0
        worker = make_faulty_worker()
        warm_flag_and_kill(env, worker, backend, faulty_transport)
        # Let the copy's verification age blow past the grace window.
        env.run(until=env.now + 400.0)
        response = run(env, worker.fetch(get("/product/1")))
        assert response.status == Status.OK
        assert response.headers.get("X-Stale-If-Error") is None
        assert response.headers.get("X-SpeedKit-Offline") == "1"

    def test_bounded_serving_works_without_offline_mode(
        self, env, make_faulty_worker, faulty_transport, backend, config
    ):
        config.offline_mode = False
        config.stale_if_error_window = 600.0
        worker = make_faulty_worker()
        warm_flag_and_kill(env, worker, backend, faulty_transport)
        response = run(env, worker.fetch(get("/product/1")))
        assert response.status == Status.OK
        assert response.headers.get("X-Stale-If-Error") == "1"

    def test_error_propagates_when_no_rung_applies(
        self, env, make_faulty_worker, faulty_transport, backend, config
    ):
        config.offline_mode = False
        config.stale_if_error_window = 60.0
        worker = make_faulty_worker()
        warm_flag_and_kill(env, worker, backend, faulty_transport)
        env.run(until=env.now + 400.0)
        response = run(env, worker.fetch(get("/product/1")))
        assert response.status == Status.SERVICE_UNAVAILABLE

    def test_degraded_serving_is_not_counted_as_cache_hit(
        self, env, make_faulty_worker, faulty_transport, backend, config
    ):
        """Regression: the degradation ladder used to bump the SW
        cache's "hit" counter, making outages *raise* the hit ratio."""
        config.stale_if_error_window = 60.0
        worker = make_faulty_worker()
        warm_flag_and_kill(env, worker, backend, faulty_transport)
        hits_before = worker.metrics.counter("sw.sw:client.hit").value
        response = run(env, worker.fetch(get("/product/1")))
        assert response.headers.get("X-Stale-If-Error") == "1"
        assert (
            worker.metrics.counter("sw.sw:client.hit").value
            == hits_before
        )
        assert (
            worker.metrics.counter(
                "speedkit.client.served_from_cache"
            ).value
            == 0
        )

    def test_offline_serving_is_not_counted_as_cache_hit(
        self, env, make_faulty_worker, faulty_transport, backend, config
    ):
        worker = make_faulty_worker()
        warm_flag_and_kill(env, worker, backend, faulty_transport)
        hits_before = worker.metrics.counter("sw.sw:client.hit").value
        response = run(env, worker.fetch(get("/product/1")))
        assert response.headers.get("X-SpeedKit-Offline") == "1"
        assert (
            worker.metrics.counter("sw.sw:client.hit").value
            == hits_before
        )

    def test_no_window_keeps_historical_offline_behaviour(
        self, env, make_faulty_worker, faulty_transport, backend, config
    ):
        assert config.stale_if_error_window is None
        worker = make_faulty_worker()
        warm_flag_and_kill(env, worker, backend, faulty_transport)
        response = run(env, worker.fetch(get("/product/1")))
        assert response.status == Status.OK
        assert response.headers.get("X-SpeedKit-Offline") == "1"
