"""Tests for cache prewarming."""

import pytest

from repro.http import Request, URL
from repro.speedkit import prewarm

from tests.speedkit.conftest import run


class TestPrewarm:
    def test_urls_land_in_every_pop(self, backend):
        urls = [URL.parse("/product/1"), URL.parse("/static/app.js")]
        report = prewarm(backend, urls, at=0.0)
        assert report.warmed_count == 2
        assert report.failed == []
        assert report.bytes_pushed > 0
        for url in urls:
            assert backend.cdn.pop("edge").serve(
                Request.get(url), now=1.0
            ) is not None

    def test_segment_variants_prewarmed(self, backend):
        report = prewarm(
            backend,
            [URL.parse("/product/1")],
            at=0.0,
            segments=["gold|de", "standard|en"],
        )
        assert report.warmed_count == 3  # base + two variants
        variant = URL.parse("/product/1").with_param("sk_segment", "gold|de")
        assert backend.cdn.pop("edge").serve(
            Request.get(variant), now=1.0
        ) is not None

    def test_missing_resource_reported_failed(self, backend):
        report = prewarm(backend, [URL.parse("/product/999")], at=0.0)
        assert report.warmed_count == 0
        assert report.failed == ["shop.example/product/999"]

    def test_uncacheable_resource_reported_failed(self, backend):
        # The checkout page is user-personalized -> anonymous render is
        # cacheable? It renders anonymously (no user docs) with PAGE
        # defaults, so it IS cacheable; use the cart fragment instead
        # (fragment TTL 0 -> no-store).
        report = prewarm(backend, [URL.parse("/api/blocks/cart")], at=0.0)
        assert report.warmed_count == 0
        assert report.failed == ["shop.example/api/blocks/cart"]

    def test_prewarmed_copies_are_sketch_tracked(self, backend, env):
        """Coherence: a write to a prewarmed resource lands in the
        sketch because the warmer's reads were reported normally."""
        prewarm(backend, [URL.parse("/product/1")], at=0.0)
        backend.server.update("products", "1", {"price": 99}, at=1.0)
        env.run(until=2.0)
        assert backend.sketch.contains(
            URL.parse("/product/1").cache_key(), now=env.now
        )

    def test_first_visitor_hits_warm_edge(self, backend, env, make_worker):
        prewarm(
            backend,
            [URL.parse("/product/1")],
            at=0.0,
            segments=["gold|de"],
        )
        worker = make_worker()  # gold|de user
        response = run(env, worker.fetch(Request.get(URL.parse("/product/1"))))
        assert response.served_by == "edge"
