"""Integration tests for client-side dynamic-block assembly."""

import pytest

from repro.http import Request, Status, URL
from repro.origin import (
    PersonalizationKind,
    ResourceKind,
    ResourceSpec,
)
from repro.speedkit import BlockSpec

from tests.speedkit.conftest import run


@pytest.fixture
def skeleton_route(backend):
    """A page whose body contains block placeholders."""
    site = backend.site
    spec = ResourceSpec(
        name="home-skeleton",
        pattern="/home",
        kind=ResourceKind.PAGE,
        personalization=PersonalizationKind.SEGMENT,
        size_bytes=10_000,
    )
    site.routes.insert(0, spec)

    # Patch rendering so the skeleton body carries placeholders.
    original = backend.server._render_body

    def with_placeholders(spec_arg, params, query, user_id, segment):
        body, found = original(spec_arg, params, query, user_id, segment)
        if spec_arg.name == "home-skeleton":
            body = f"<header/>{{{{block:cart}}}}<main>{body}</main>"
        return body, found

    backend.server._render_body = with_placeholders
    return spec


def cart_block():
    return BlockSpec(name="cart", url=URL.parse("/api/blocks/cart"))


class TestAssembly:
    def test_skeleton_and_user_block_compose(
        self, env, backend, make_worker, skeleton_route
    ):
        backend.server.write("carts", "u1", {"items": [1, 2]}, at=0.0)
        worker = make_worker(user_id="u1")
        response = run(
            env,
            worker.fetch_assembled(
                Request.get(URL.parse("/home")), [cart_block()]
            ),
        )
        assert response.status == Status.OK
        assert "{{block:cart}}" not in response.body
        assert '"items": [1, 2]' in response.body
        assert response.served_by.endswith("+blocks")

    def test_skeleton_is_cached_blocks_stay_fresh(
        self, env, backend, make_worker, skeleton_route
    ):
        worker = make_worker(user_id="u1")
        backend.server.write("carts", "u1", {"items": [1]}, at=0.0)
        run(
            env,
            worker.fetch_assembled(
                Request.get(URL.parse("/home")), [cart_block()]
            ),
        )
        # The cart changes; the skeleton does not.
        backend.server.write("carts", "u1", {"items": [1, 2, 3]}, at=env.now)
        response = run(
            env,
            worker.fetch_assembled(
                Request.get(URL.parse("/home")), [cart_block()]
            ),
        )
        # Skeleton came from the SW cache, cart content is current.
        assert response.served_by.startswith("sw:")
        assert '"items": [1, 2, 3]' in response.body

    def test_failed_optional_block_renders_empty(
        self, env, make_worker, skeleton_route
    ):
        worker = make_worker(user_id="u1")
        missing = BlockSpec(
            name="cart", url=URL.parse("/api/blocks/missing")
        )
        response = run(
            env,
            worker.fetch_assembled(
                Request.get(URL.parse("/home")), [missing]
            ),
        )
        assert response.status == Status.OK
        assert "{{block:cart}}" not in response.body

    def test_failed_required_block_fails_page(
        self, env, make_worker, skeleton_route
    ):
        worker = make_worker(user_id="u1")
        required = BlockSpec(
            name="cart",
            url=URL.parse("/api/blocks/missing"),
            optional=False,
        )
        response = run(
            env,
            worker.fetch_assembled(
                Request.get(URL.parse("/home")), [required]
            ),
        )
        assert response.status == Status.NOT_FOUND

    def test_failing_skeleton_short_circuits(self, env, make_worker):
        worker = make_worker()
        response = run(
            env,
            worker.fetch_assembled(
                Request.get(URL.parse("/nowhere")), [cart_block()]
            ),
        )
        assert response.status == Status.NOT_FOUND

    def test_no_blocks_is_plain_fetch(
        self, env, make_worker, skeleton_route
    ):
        worker = make_worker()
        response = run(
            env,
            worker.fetch_assembled(Request.get(URL.parse("/home")), []),
        )
        assert response.status == Status.OK
