"""Tests for client-side segmentation."""

from repro.speedkit import (
    ConsentManager,
    PiiVault,
    Purpose,
    SegmentResolver,
    SegmentScheme,
)


def make_resolver(attrs=None, consented=True, identified=True):
    vault = PiiVault(
        user_id="u1" if identified else None, attributes=attrs or {}
    )
    consent = (
        ConsentManager.all_granted()
        if consented
        else ConsentManager.none_granted()
    )
    return SegmentResolver(SegmentScheme.ecommerce_default(), vault, consent)


class TestSegmentScheme:
    def test_empty_scheme_is_one_segment(self):
        assert SegmentScheme().segment_of({"anything": 1}) == "all"

    def test_dimensions_compose(self):
        scheme = SegmentScheme.ecommerce_default()
        assert scheme.segment_of({"tier": "gold", "locale": "de"}) == "gold|de"

    def test_missing_attributes_use_defaults(self):
        scheme = SegmentScheme.ecommerce_default()
        assert scheme.segment_of({}) == "standard|en"

    def test_anonymity_report(self):
        scheme = SegmentScheme.ecommerce_default()
        population = [
            {"tier": "gold", "locale": "de"},
            {"tier": "gold", "locale": "de"},
            {"tier": "standard", "locale": "en"},
        ]
        report = scheme.anonymity_report(population)
        assert report == {"gold|de": 2, "standard|en": 1}
        assert scheme.min_anonymity(population) == 1

    def test_min_anonymity_of_empty_population(self):
        assert SegmentScheme.ecommerce_default().min_anonymity([]) == 0

    def test_add_dimension_chains(self):
        scheme = SegmentScheme().add_dimension(
            "cohort", lambda a: str(a.get("cohort", "A"))
        )
        assert scheme.segment_of({"cohort": "B"}) == "B"


class TestSegmentResolver:
    def test_consenting_identified_user_gets_real_segment(self):
        resolver = make_resolver({"tier": "gold", "locale": "fr"})
        assert resolver.resolve() == "gold|fr"

    def test_without_consent_default_segment(self):
        resolver = make_resolver({"tier": "gold"}, consented=False)
        assert resolver.resolve() == SegmentResolver.DEFAULT_SEGMENT

    def test_anonymous_user_default_segment(self):
        resolver = make_resolver(identified=False)
        assert resolver.resolve() == SegmentResolver.DEFAULT_SEGMENT

    def test_partial_consent_segmentation_only_matters(self):
        vault = PiiVault(user_id="u1", attributes={"tier": "gold"})
        consent = ConsentManager(granted={Purpose.ACCELERATION})
        resolver = SegmentResolver(
            SegmentScheme.ecommerce_default(), vault, consent
        )
        # Acceleration alone does not allow deriving a segment.
        assert resolver.resolve() == SegmentResolver.DEFAULT_SEGMENT
