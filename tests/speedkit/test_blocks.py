"""Tests for dynamic block assembly."""

from repro.http import Headers, Response, Status, URL
from repro.speedkit import BlockSpec, DynamicBlockAssembler


def response(body, served_by="edge"):
    return Response(
        status=Status.OK,
        headers=Headers(),
        body=body,
        url=URL.of("/page"),
        served_by=served_by,
        version=1,
    )


def test_block_spec_defaults_optional():
    spec = BlockSpec(name="cart", url=URL.of("/api/blocks/cart"))
    assert spec.optional


class TestPlaceholders:
    def test_placeholders_found_in_order(self):
        assembler = DynamicBlockAssembler()
        body = "a {{block:cart}} b {{block:reco}} c"
        assert assembler.placeholders_in(body) == ["cart", "reco"]

    def test_no_placeholders(self):
        assert DynamicBlockAssembler().placeholders_in("plain") == []

    def test_none_body(self):
        assert DynamicBlockAssembler().placeholders_in(None) == []


class TestAssembly:
    def test_blocks_replace_placeholders(self):
        assembler = DynamicBlockAssembler()
        skeleton = response("header {{block:cart}} footer")
        assembled = assembler.assemble(
            skeleton, {"cart": response("3 items", served_by="origin")}
        )
        assert assembled.body == "header 3 items footer"
        assert assembled.served_by == "edge+blocks"

    def test_failed_optional_block_renders_empty(self):
        assembler = DynamicBlockAssembler()
        skeleton = response("a {{block:cart}} b")
        assembled = assembler.assemble(skeleton, {"cart": None})
        assert assembled.body == "a  b"

    def test_unknown_placeholders_left_intact(self):
        assembler = DynamicBlockAssembler()
        skeleton = response("x {{block:mystery}} y")
        assembled = assembler.assemble(skeleton, {})
        assert assembled.body == "x {{block:mystery}} y"

    def test_non_string_block_bodies_are_json(self):
        assembler = DynamicBlockAssembler()
        skeleton = response("cart: {{block:cart}}")
        assembled = assembler.assemble(
            skeleton, {"cart": response({"items": [1, 2]})}
        )
        assert assembled.body == 'cart: {"items": [1, 2]}'

    def test_skeleton_is_not_mutated(self):
        assembler = DynamicBlockAssembler()
        skeleton = response("a {{block:b}} c")
        assembler.assemble(skeleton, {"b": response("X")})
        assert skeleton.body == "a {{block:b}} c"

    def test_repeated_placeholder_replaced_everywhere(self):
        assembler = DynamicBlockAssembler()
        skeleton = response("{{block:b}} and {{block:b}}")
        assembled = assembler.assemble(skeleton, {"b": response("X")})
        assert assembled.body == "X and X"
