"""Prefix-scan cost over the hash-partitioned engine.

A scan must visit every shard (hash routing scatters a prefix across
the whole partition set), but each visit is one batched round trip —
get_many style. The simulated cost is therefore exactly one scan
charge per shard: O(n_shards), independent of how many entries match,
how much of the result the caller consumes, or when it is consumed.
"""

import random

import pytest

from repro.simnet.delay import ConstantDelay
from repro.storage.remote import SimulatedRemoteBackend
from repro.storage.sharded import ShardedBackend


def _remote_sharded(n_shards):
    def factory():
        return SimulatedRemoteBackend(
            read_delay=ConstantDelay(0.001),
            write_delay=ConstantDelay(0.001),
            rng=random.Random(0),
        )

    return ShardedBackend(n_shards=n_shards, shard_factory=factory)


def _scan_charges(backend):
    return sum(
        shard.op_counts.get("scan", 0) for shard in backend.shards
    )


def test_scan_charges_exactly_one_visit_per_shard():
    backend = _remote_sharded(8)
    for i in range(200):
        backend.put(f"doc/{i}", i)
    backend.drain_latency()  # clear the write cost
    results = list(backend.scan("doc/"))
    assert len(results) == 200
    assert _scan_charges(backend) == 8


def test_scan_cost_grows_linearly_in_shards_not_entries():
    # Same entry count, 4x the shards => exactly 4x the scan charges
    # and (with constant per-op delay) exactly 4x the pending latency.
    costs = {}
    for n_shards in (8, 32):
        backend = _remote_sharded(n_shards)
        for i in range(400):
            backend.put(f"doc/{i}", i)
        backend.drain_latency()
        list(backend.scan("doc/"))
        costs[n_shards] = (
            _scan_charges(backend),
            backend.pending_latency(),
        )
    assert costs[32][0] == 4 * costs[8][0]
    assert costs[32][1] == pytest.approx(4 * costs[8][1])

    # And the cost is flat in the number of entries.
    small, large = _remote_sharded(8), _remote_sharded(8)
    for i in range(50):
        small.put(f"doc/{i}", i)
    for i in range(2000):
        large.put(f"doc/{i}", i)
    small.drain_latency()
    large.drain_latency()
    list(small.scan("doc/"))
    list(large.scan("doc/"))
    assert _scan_charges(small) == _scan_charges(large) == 8
    assert small.pending_latency() == large.pending_latency()


def test_scan_charges_do_not_depend_on_consumption():
    # The charge lands at call time, whole-shard batched: consuming
    # one item — or nothing — costs the same as consuming everything,
    # so simulated latency cannot leak on early-terminating readers.
    backend = _remote_sharded(8)
    for i in range(100):
        backend.put(f"doc/{i}", i)
    backend.drain_latency()
    iterator = backend.scan("doc/")
    next(iterator)
    assert _scan_charges(backend) == 8
    full = backend.pending_latency()
    backend.drain_latency()
    list(backend.scan("doc/"))
    assert backend.pending_latency() == full


def test_scan_results_are_complete_and_prefix_filtered():
    backend = ShardedBackend(n_shards=8)
    for i in range(60):
        backend.put(f"products/{i}", i)
        backend.put(f"carts/{i}", i)
    scanned = dict(backend.scan("products/"))
    assert len(scanned) == 60
    assert all(key.startswith("products/") for key in scanned)
