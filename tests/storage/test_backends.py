"""Engine-specific behaviour: sharding, remote latency, the spec."""

import random

import pytest

from repro.simnet.delay import ConstantDelay
from repro.storage import (
    BACKEND_KINDS,
    BackendSpec,
    BatchedRemoteBackend,
    InMemoryBackend,
    ShardedBackend,
    SimulatedRemoteBackend,
)
from repro.storage.sharded import shard_index_of


class TestShardRouting:
    def test_routing_is_stable(self):
        # CRC-32 routing must not depend on PYTHONHASHSEED.
        assert shard_index_of("pages/home", 8) == shard_index_of(
            "pages/home", 8
        )
        backend = ShardedBackend(n_shards=8)
        assert backend.shard_index("pages/home") == shard_index_of(
            "pages/home", 8
        )

    def test_key_lives_in_its_routed_shard(self):
        backend = ShardedBackend(n_shards=4)
        backend.put("k", "value", size=1)
        index = backend.shard_index("k")
        assert backend.shards[index].get("k") == "value"
        for other, shard in enumerate(backend.shards):
            if other != index:
                assert shard.get("k") is None

    def test_keys_spread_across_shards(self):
        backend = ShardedBackend(n_shards=4)
        for i in range(200):
            backend.put(f"key-{i}", i)
        sizes = backend.shard_sizes()
        assert sum(sizes) == 200
        assert all(size > 0 for size in sizes)  # nothing degenerate

    def test_single_shard_behaves_like_inmemory(self):
        sharded = ShardedBackend(n_shards=1)
        plain = InMemoryBackend()
        for i in range(20):
            sharded.put(f"k{i}", i, size=i)
            plain.put(f"k{i}", i, size=i)
        assert sorted(sharded.scan()) == sorted(plain.scan())
        assert sharded.bytes_used == plain.bytes_used

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ShardedBackend(n_shards=0)
        with pytest.raises(ValueError):
            ShardedBackend(max_entries_per_shard=0)
        with pytest.raises(ValueError):
            ShardedBackend(max_bytes_per_shard=-1)


class TestShardCapacity:
    def test_per_shard_entry_cap_drops_oldest(self):
        backend = ShardedBackend(n_shards=1, max_entries_per_shard=3)
        dropped = []
        backend.subscribe_evictions(lambda key, value: dropped.append(key))
        for name in ("a", "b", "c", "d"):
            backend.put(name, name)
        assert dropped == ["a"]
        assert sorted(backend.keys()) == ["b", "c", "d"]

    def test_per_shard_byte_cap(self):
        backend = ShardedBackend(n_shards=1, max_bytes_per_shard=100)
        backend.put("a", "a", size=60)
        backend.put("b", "b", size=60)
        assert backend.keys() == ["b"]
        assert backend.bytes_used == 60

    def test_oversized_entry_is_kept(self):
        # Same no-thrash rule as the policy layer: a lone entry larger
        # than the shard stays put.
        backend = ShardedBackend(n_shards=1, max_bytes_per_shard=10)
        backend.put("big", "x", size=50)
        assert backend.get("big") == "x"

    def test_caps_are_per_shard_not_global(self):
        backend = ShardedBackend(n_shards=4, max_entries_per_shard=2)
        for i in range(40):
            backend.put(f"key-{i}", i)
        assert all(size <= 2 for size in backend.shard_sizes())
        assert len(backend) <= 8


class TestRemoteLatency:
    def _backend(self, read=0.001, write=0.002):
        return SimulatedRemoteBackend(
            read_delay=ConstantDelay(read),
            write_delay=ConstantDelay(write),
        )

    def test_operations_accrue_latency(self):
        backend = self._backend()
        backend.put("k", "v")  # write: 0.002
        backend.get("k")  # read: 0.001
        backend.remove("k")  # write: 0.002
        assert backend.pending_latency() == pytest.approx(0.005)
        assert backend.total_latency == pytest.approx(0.005)
        assert backend.op_counts == {"get": 1, "put": 1, "remove": 1}

    def test_scan_and_clear_are_charged(self):
        backend = self._backend()
        list(backend.scan())
        backend.clear()
        assert backend.pending_latency() == pytest.approx(0.003)

    def test_drain_returns_and_resets(self):
        backend = self._backend()
        backend.put("k", "v")
        assert backend.drain_latency() == pytest.approx(0.002)
        assert backend.drain_latency() == 0.0
        assert backend.total_latency == pytest.approx(0.002)

    def test_metadata_is_free(self):
        backend = self._backend()
        backend.put("k", "v", size=9)
        backend.drain_latency()
        backend.peek("k")
        assert "k" in backend
        assert len(backend) == 1
        assert backend.bytes_used == 9
        assert backend.keys() == ["k"]
        assert backend.pending_latency() == 0.0

    def test_latency_stream_is_deterministic(self):
        first = SimulatedRemoteBackend(rng=random.Random(42))
        second = SimulatedRemoteBackend(rng=random.Random(42))
        for backend in (first, second):
            for i in range(50):
                backend.put(f"k{i}", i)
                backend.get(f"k{i}")
        assert first.total_latency == pytest.approx(second.total_latency)

    def test_storage_delegates_to_inner(self):
        inner = InMemoryBackend()
        backend = SimulatedRemoteBackend(inner=inner)
        backend.put("k", "v", size=4)
        assert inner.get("k") == "v"
        assert inner.bytes_used == 4


class TestBackendSpec:
    def test_kind_registry(self):
        assert BACKEND_KINDS == (
            "inmemory",
            "sharded",
            "remote",
            "batched",
            "write-behind",
        )

    def test_build_each_kind(self):
        assert isinstance(
            BackendSpec(kind="inmemory").build(), InMemoryBackend
        )
        sharded = BackendSpec(kind="sharded", n_shards=3).build()
        assert isinstance(sharded, ShardedBackend)
        assert sharded.n_shards == 3
        assert isinstance(
            BackendSpec(kind="remote").build(), SimulatedRemoteBackend
        )
        batched = BackendSpec(
            kind="batched", batch_window=8, overlap=True
        ).build()
        assert isinstance(batched, BatchedRemoteBackend)
        assert batched.batch_window == 8
        assert batched.overlap

    def test_build_returns_fresh_instances(self):
        spec = BackendSpec(kind="inmemory")
        assert spec.build() is not spec.build()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown backend kind"):
            BackendSpec(kind="memcached")

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            BackendSpec(n_shards=0)
        with pytest.raises(ValueError):
            BackendSpec(read_latency=0.0)

    def test_roundtrip_dict(self):
        spec = BackendSpec(kind="sharded", n_shards=4, seed=3)
        assert BackendSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown backend keys"):
            BackendSpec.from_dict({"kind": "inmemory", "flavour": "fast"})

    def test_parse_forms(self):
        assert BackendSpec.parse(None) == BackendSpec()
        assert BackendSpec.parse("remote").kind == "remote"
        assert BackendSpec.parse({"kind": "sharded"}).kind == "sharded"
        spec = BackendSpec(kind="remote", seed=9)
        assert BackendSpec.parse(spec) is spec
        with pytest.raises(TypeError):
            BackendSpec.parse(42)

    def test_salt_decorrelates_remote_streams(self):
        spec = BackendSpec(kind="remote", seed=1)
        a = spec.build(salt="edge:edge-1")
        b = spec.build(salt="edge:edge-2")
        same = spec.build(salt="edge:edge-1")
        for backend in (a, b, same):
            for i in range(20):
                backend.put(f"k{i}", i)
        assert a.total_latency == pytest.approx(same.total_latency)
        assert a.total_latency != pytest.approx(b.total_latency)

    def test_remote_spec_latency_params_apply(self):
        spec = BackendSpec(
            kind="remote",
            read_latency=0.05,
            write_latency=0.1,
            latency_sigma=0.2,
        )
        backend = spec.build()
        assert backend.read_delay.median == pytest.approx(0.05)
        assert backend.write_delay.median == pytest.approx(0.1)
