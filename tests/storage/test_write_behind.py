"""The write-behind engine: acks, epochs, overlay, sync barriers."""

import random

import pytest

from repro.simnet.delay import ConstantDelay
from repro.storage import (
    BatchedRemoteBackend,
    ShardedBackend,
    WriteBehindBackend,
)

READ = 0.01
WRITE = 0.02
MARGINAL = 0.001
FLUSH = 0.05


def make_backend(**kwargs):
    kwargs.setdefault("read_delay", ConstantDelay(READ))
    kwargs.setdefault("write_delay", ConstantDelay(WRITE))
    kwargs.setdefault("per_key_cost", MARGINAL)
    kwargs.setdefault("flush_interval", FLUSH)
    kwargs.setdefault("rng", random.Random(0))
    return WriteBehindBackend(**kwargs)


class TestConstruction:
    def test_kind(self):
        assert make_backend().kind == "write-behind"

    def test_rejects_negative_flush_interval(self):
        with pytest.raises(ValueError):
            make_backend(flush_interval=-0.01)

    def test_rejects_non_empty_inner(self):
        inner = BatchedRemoteBackend(rng=random.Random(0))
        inner.put("pre", "existing")
        inner.drain_latency()
        with pytest.raises(ValueError):
            WriteBehindBackend(inner=inner)

    def test_builds_batched_inner_by_default(self):
        assert isinstance(make_backend().inner, BatchedRemoteBackend)


class TestImmediateAcks:
    """Mutations acknowledge at zero foreground cost."""

    def test_put_accrues_no_latency(self):
        backend = make_backend()
        backend.put("k", "v", size=4)
        assert backend.pending_latency() == 0.0
        assert backend.drain_latency() == 0.0

    def test_remove_accrues_no_latency(self):
        backend = make_backend()
        backend.put("k", "v", size=4)
        backend.drain_latency()
        assert backend.remove("k") == "v"
        assert backend.pending_latency() == 0.0
        assert backend.drain_latency() == 0.0

    def test_put_many_accrues_no_latency(self):
        backend = make_backend()
        backend.put_many([(f"k{i}", i, 1) for i in range(50)])
        assert backend.pending_latency() == 0.0

    def test_reads_still_pay_inner_cost(self):
        backend = make_backend()
        backend.put("k", "v", size=4)
        backend.drain_latency()  # flush: the key now lives inner-side
        backend.get("k")
        assert backend.pending_latency() == pytest.approx(READ + MARGINAL)

    def test_acks_are_counted(self):
        backend = make_backend()
        backend.put("a", 1)
        backend.put_many([("b", 2, 0), ("c", 3, 0)])
        backend.remove("a")
        assert backend.acks == 4


class TestFlushEpochs:
    def test_mutations_queue_until_drain(self):
        backend = make_backend()
        backend.put("a", 1, size=1)
        backend.put("b", 2, size=1)
        assert backend.queued_mutations == 2
        assert backend.unflushed_epochs == 1
        assert len(backend.inner) == 0  # nothing applied yet

    def test_drain_flushes_to_inner_as_background_cost(self):
        backend = make_backend()
        backend.put("a", 1, size=1)
        backend.put("b", 2, size=1)
        assert backend.drain_latency() == 0.0  # foreground: nothing
        assert backend.queued_mutations == 0
        assert backend.inner.get("a") == 1
        # One write round trip + two marginals, off the critical path.
        assert backend.background_latency == pytest.approx(
            WRITE + 2 * MARGINAL
        )

    def test_epoch_and_mutation_counters(self):
        backend = make_backend()
        backend.put("a", 1)
        backend.drain_latency()
        backend.put("b", 2)
        backend.put("c", 3)
        backend.drain_latency()
        assert backend.epochs_flushed == 2
        assert backend.mutations_flushed == 3

    def test_empty_drain_flushes_nothing(self):
        backend = make_backend()
        backend.drain_latency()
        assert backend.epochs_flushed == 0
        assert backend.background_latency == 0.0

    def test_remove_after_put_is_not_reordered(self):
        """A remove queued after a put in the same epoch must win: the
        flush cuts batches at type turns so arrival order is kept."""
        backend = make_backend()
        backend.put("k", "v1", size=2)
        backend.remove("k")
        backend.put("k", "v2", size=2)
        backend.remove("k")
        backend.drain_latency()
        assert backend.inner.get("k") is None
        assert backend.get("k") is None
        assert len(backend) == 0
        assert backend.bytes_used == 0

    def test_put_after_remove_is_not_reordered(self):
        backend = make_backend()
        backend.put("k", "v1", size=2)
        backend.drain_latency()
        backend.remove("k")
        backend.put("k", "v2", size=3)
        backend.drain_latency()
        assert backend.inner.get("k") == "v2"
        assert backend.bytes_used == 3


class TestReadYourWrites:
    def test_get_answers_from_overlay_cost_free(self):
        backend = make_backend()
        backend.put("k", "v", size=4)
        assert backend.get("k") == "v"
        assert backend.pending_latency() == 0.0

    def test_tombstone_hides_flushed_value(self):
        backend = make_backend()
        backend.put("k", "v", size=4)
        backend.drain_latency()
        backend.remove("k")
        # The inner engine still holds the copy; the overlay's
        # tombstone must hide it from every read path.
        assert backend.inner.peek("k") == "v"
        assert backend.get("k") is None
        assert backend.peek("k") is None
        assert "k" not in backend
        assert backend.get_many(["k"]) == {}

    def test_overlay_drops_once_flushed(self):
        backend = make_backend()
        backend.put("k", "v", size=4)
        backend.drain_latency()
        assert backend._overlay == {}
        assert backend.get("k") == "v"  # now served by the inner engine

    def test_latest_queued_value_wins(self):
        backend = make_backend()
        backend.put("k", "v1", size=1)
        backend.put("k", "v2", size=2)
        assert backend.get("k") == "v2"
        assert backend.bytes_used == 2

    def test_accounting_is_merged_view(self):
        backend = make_backend()
        backend.put("a", 1, size=10)
        backend.drain_latency()
        backend.put("b", 2, size=20)  # queued
        backend.remove("a")  # queued tombstone
        assert len(backend) == 1
        assert backend.bytes_used == 20
        assert sorted(backend.keys()) == ["b"]


class TestSyncBarrier:
    def test_sync_flushes_everything(self):
        backend = make_backend()
        backend.put("a", 1, size=1)
        backend.put("b", 2, size=1)
        backend.sync()
        assert backend.queued_mutations == 0
        assert backend.inner.get("a") == 1
        assert backend.inner.get("b") == 2

    def test_sync_wait_covers_interval_and_write_drain(self):
        backend = make_backend()
        backend.put("a", 1, size=1)
        backend.put("b", 2, size=1)
        wait = backend.sync()
        assert wait == pytest.approx(FLUSH + WRITE + 2 * MARGINAL)

    def test_sync_with_nothing_queued_is_free(self):
        backend = make_backend()
        backend.put("a", 1)
        backend.drain_latency()
        assert backend.sync() == 0.0

    def test_sync_includes_outstanding_read_cost(self):
        backend = make_backend()
        backend.put("a", 1, size=1)
        backend.drain_latency()
        backend.get("a")  # read cost pending against the inner engine
        backend.put("b", 2, size=1)
        wait = backend.sync()
        assert wait == pytest.approx(
            (READ + MARGINAL) + FLUSH + (WRITE + MARGINAL)
        )
        assert backend.pending_latency() == 0.0

    def test_sync_cost_is_not_double_counted_in_background(self):
        backend = make_backend()
        backend.put("a", 1, size=1)
        backend.sync()
        assert backend.background_latency == 0.0


class TestRandomizedModelCheck:
    """The merged view must match a plain dict under any schedule of
    puts, removes, batched ops, drains, and sync barriers."""

    KEYS = [f"k{i}" for i in range(12)]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedule_matches_reference(self, seed):
        rng = random.Random(seed)
        backend = make_backend(rng=random.Random(seed + 100))
        reference = {}
        for _ in range(400):
            op = rng.random()
            key = rng.choice(self.KEYS)
            if op < 0.35:
                value = rng.randrange(1000)
                backend.put(key, value, size=1)
                reference[key] = value
            elif op < 0.50:
                expected = reference.pop(key, None)
                assert backend.remove(key) == expected
            elif op < 0.60:
                items = [
                    (k, rng.randrange(1000), 1)
                    for k in rng.sample(self.KEYS, 4)
                ]
                backend.put_many(items)
                reference.update({k: v for k, v, _ in items})
            elif op < 0.70:
                victims = rng.sample(self.KEYS, 3)
                expected = {
                    k: reference.pop(k) for k in victims if k in reference
                }
                assert backend.remove_many(victims) == expected
            elif op < 0.90:
                assert backend.get(key) == reference.get(key)
            elif op < 0.96:
                assert backend.drain_latency() >= 0.0
            else:
                assert backend.sync() >= 0.0
        backend.sync()
        assert dict(backend.inner.scan()) == reference
        assert dict(backend.scan()) == reference
        assert len(backend) == len(reference)
        assert backend.bytes_used == len(reference)
        assert backend.queued_mutations == 0


class TestEvictionForwarding:
    def make_bounded(self, max_entries):
        return WriteBehindBackend(
            inner=BatchedRemoteBackend(
                inner=ShardedBackend(
                    n_shards=1, max_entries_per_shard=max_entries
                ),
                read_delay=ConstantDelay(READ),
                write_delay=ConstantDelay(WRITE),
                per_key_cost=MARGINAL,
            ),
            flush_interval=FLUSH,
        )

    def test_inner_capacity_drop_is_forwarded(self):
        backend = self.make_bounded(max_entries=2)
        dropped = []
        backend.subscribe_evictions(lambda key, value: dropped.append(key))
        for i in range(3):
            backend.put(f"k{i}", i, size=1)
            backend.drain_latency()
        assert dropped == ["k0"]
        assert len(backend) == 2
        assert backend.bytes_used == 2

    def test_drop_masked_by_pending_overwrite_is_suppressed(self):
        """An eviction of a key whose newer value is still queued is
        invisible above: the pending flush restores the key."""
        backend = self.make_bounded(max_entries=2)
        dropped = []
        backend.subscribe_evictions(lambda key, value: dropped.append(key))
        backend.put("a", 1, size=1)
        backend.drain_latency()
        backend.put("a", 2, size=1)  # queued overwrite
        backend.put("b", 3, size=1)
        backend.put("c", 4, size=1)
        backend.drain_latency()
        # Whatever got evicted mid-flush, the merged view stayed at the
        # inner engine's capacity and reads never saw a phantom key.
        assert len(backend) == 2
        assert set(backend.keys()) == {
            key for key, _ in backend.inner.scan()
        }
