"""The backend conformance suite: one contract, every engine.

Each test runs against every registered engine configuration via the
``backend`` fixture. Engines added later only need a new entry in
``ENGINE_FACTORIES`` to be held to the same contract.
"""

import random

import pytest

from repro.simnet.delay import ConstantDelay
from repro.storage import (
    BatchedRemoteBackend,
    InMemoryBackend,
    ShardedBackend,
    SimulatedRemoteBackend,
    WriteBehindBackend,
)

ENGINE_FACTORIES = {
    "inmemory": InMemoryBackend,
    "sharded-1": lambda: ShardedBackend(n_shards=1),
    "sharded-4": lambda: ShardedBackend(n_shards=4),
    "remote": lambda: SimulatedRemoteBackend(rng=random.Random(7)),
    "remote-over-sharded": lambda: SimulatedRemoteBackend(
        inner=ShardedBackend(n_shards=4), rng=random.Random(7)
    ),
    "batched": lambda: BatchedRemoteBackend(rng=random.Random(7)),
    "batched-overlap": lambda: BatchedRemoteBackend(
        overlap=True, rng=random.Random(7)
    ),
    "batched-over-sharded": lambda: BatchedRemoteBackend(
        inner=ShardedBackend(n_shards=4), rng=random.Random(7)
    ),
    "write-behind": lambda: WriteBehindBackend(rng=random.Random(7)),
    "write-behind-overlap": lambda: WriteBehindBackend(
        overlap=True, rng=random.Random(7)
    ),
    "write-behind-over-sharded": lambda: WriteBehindBackend(
        inner=BatchedRemoteBackend(
            inner=ShardedBackend(n_shards=4), rng=random.Random(7)
        )
    ),
}


@pytest.fixture(params=sorted(ENGINE_FACTORIES))
def backend(request):
    return ENGINE_FACTORIES[request.param]()


class TestRoundtrip:
    def test_put_get(self, backend):
        backend.put("k", "value", size=5)
        assert backend.get("k") == "value"

    def test_get_missing(self, backend):
        assert backend.get("ghost") is None

    def test_peek_matches_get(self, backend):
        backend.put("k", "value", size=5)
        assert backend.peek("k") == "value"
        assert backend.peek("ghost") is None

    def test_contains(self, backend):
        backend.put("k", "value")
        assert "k" in backend
        assert "ghost" not in backend

    def test_overwrite_replaces_value_and_size(self, backend):
        backend.put("k", "old", size=10)
        backend.put("k", "new", size=3)
        assert backend.get("k") == "new"
        assert len(backend) == 1
        assert backend.bytes_used == 3

    def test_values_are_opaque(self, backend):
        marker = object()
        backend.put("k", marker)
        assert backend.get("k") is marker


class TestRemove:
    def test_remove_returns_value(self, backend):
        backend.put("k", "value", size=5)
        assert backend.remove("k") == "value"
        assert backend.get("k") is None
        assert len(backend) == 0
        assert backend.bytes_used == 0

    def test_remove_missing_returns_none(self, backend):
        assert backend.remove("ghost") is None

    def test_remove_is_not_announced_as_eviction(self, backend):
        dropped = []
        backend.subscribe_evictions(lambda key, value: dropped.append(key))
        backend.put("k", "value")
        backend.remove("k")
        assert dropped == []


class TestScan:
    def test_scan_all(self, backend):
        for i in range(10):
            backend.put(f"key-{i}", i)
        assert sorted(backend.scan()) == [(f"key-{i}", i) for i in range(10)]

    def test_scan_prefix(self, backend):
        for i in range(10):
            backend.put(f"a/{i}", i)
            backend.put(f"b/{i}", i)
        found = dict(backend.scan("a/"))
        assert found == {f"a/{i}": i for i in range(10)}

    def test_scan_empty_backend(self, backend):
        assert list(backend.scan()) == []

    def test_keys(self, backend):
        backend.put("x", 1)
        backend.put("y", 2)
        assert sorted(backend.keys()) == ["x", "y"]


class TestAccounting:
    def test_len_and_bytes(self, backend):
        for i in range(5):
            backend.put(f"k{i}", i, size=10)
        assert len(backend) == 5
        assert backend.bytes_used == 50

    def test_clear(self, backend):
        dropped = []
        backend.subscribe_evictions(lambda key, value: dropped.append(key))
        for i in range(5):
            backend.put(f"k{i}", i, size=10)
        backend.clear()
        assert len(backend) == 0
        assert backend.bytes_used == 0
        assert list(backend.scan()) == []
        assert dropped == []  # clear is the caller's doing

    def test_default_size_is_zero(self, backend):
        backend.put("k", "value")
        assert backend.bytes_used == 0


class TestBatchedOps:
    """The multi-key protocol: default loops and batched overrides
    must be observably identical apart from latency accounting."""

    def test_get_many_returns_present_keys_only(self, backend):
        backend.put("a", 1)
        backend.put("b", 2)
        found = backend.get_many(["a", "ghost", "b"])
        assert found == {"a": 1, "b": 2}

    def test_get_many_empty(self, backend):
        assert backend.get_many([]) == {}

    def test_put_many_stores_all_with_sizes(self, backend):
        backend.put_many([("a", 1, 10), ("b", 2, 20), ("c", 3, 30)])
        assert backend.get("a") == 1
        assert backend.get("c") == 3
        assert len(backend) == 3
        assert backend.bytes_used == 60

    def test_put_many_overwrites(self, backend):
        backend.put("a", "old", size=10)
        backend.put_many([("a", "new", 3)])
        assert backend.get("a") == "new"
        assert backend.bytes_used == 3

    def test_remove_many_returns_removed_values(self, backend):
        backend.put("a", 1, size=5)
        backend.put("b", 2, size=5)
        removed = backend.remove_many(["a", "ghost", "b"])
        assert removed == {"a": 1, "b": 2}
        assert len(backend) == 0
        assert backend.bytes_used == 0

    def test_remove_many_is_not_announced_as_eviction(self, backend):
        dropped = []
        backend.subscribe_evictions(lambda key, value: dropped.append(key))
        backend.put_many([("a", 1, 0), ("b", 2, 0)])
        backend.remove_many(["a", "b"])
        assert dropped == []


class TestUnflushedVisibility:
    """Acknowledged mutations are immediately visible to the writer.

    On synchronous engines this is trivial; on the write-behind engine
    these reads exercise the read-your-writes overlay — the mutations
    are still queued, not yet applied to the wrapped store.
    """

    def test_get_many_sees_unflushed_put_many(self, backend):
        backend.put_many([("a", "old-a", 5), ("b", "old-b", 5)])
        backend.put_many([("a", "new-a", 3), ("c", "new-c", 3)])
        found = backend.get_many(["a", "b", "c"])
        assert found == {"a": "new-a", "b": "old-b", "c": "new-c"}

    def test_get_many_sees_unflushed_removes(self, backend):
        backend.put_many([("a", 1, 0), ("b", 2, 0)])
        backend.remove("a")
        assert backend.get_many(["a", "b"]) == {"b": 2}

    def test_scan_sees_unflushed_mutations(self, backend):
        backend.put("x/1", "one")
        backend.put("x/2", "two")
        backend.remove("x/1")
        backend.put("x/3", "three")
        assert dict(backend.scan("x/")) == {"x/2": "two", "x/3": "three"}


class TestLatencyContract:
    def test_drain_resets_pending(self, backend):
        backend.put("k", "value")
        backend.get("k")
        pending = backend.pending_latency()
        assert pending >= 0.0
        assert backend.drain_latency() == pending
        assert backend.pending_latency() == 0.0
        assert backend.drain_latency() == 0.0

    def test_drain_with_concurrent_never_negative(self, backend):
        """Regression: a concurrent-transit clip larger than the
        pending pool must floor residual latency at zero, never go
        negative (which would *speed up* the caller)."""
        for i in range(5):
            backend.put(f"k{i}", i, size=1)
            backend.get(f"k{i}")
        assert backend.drain_latency(concurrent=1e9) >= 0.0
        assert backend.drain_latency(concurrent=0.0) >= 0.0

    def test_peek_and_metadata_are_cost_free(self, backend):
        backend.put("k", "value", size=5)
        backend.drain_latency()
        backend.peek("k")
        len(backend)
        _ = backend.bytes_used
        assert backend.pending_latency() == 0.0


class TestEvictionHooks:
    def test_engine_initiated_drops_are_announced(self):
        """The sharded engine's capacity drops must reach listeners
        (the only stock engine that drops entries on its own)."""
        backend = ShardedBackend(n_shards=1, max_entries_per_shard=2)
        dropped = []
        backend.subscribe_evictions(
            lambda key, value: dropped.append((key, value))
        )
        backend.put("a", 1)
        backend.put("b", 2)
        backend.put("c", 3)
        assert dropped == [("a", 1)]
        assert len(backend) == 2

    def test_wrapped_engine_forwards_evictions(self):
        inner = ShardedBackend(n_shards=1, max_entries_per_shard=1)
        backend = SimulatedRemoteBackend(
            inner=inner,
            read_delay=ConstantDelay(0.001),
            write_delay=ConstantDelay(0.001),
        )
        dropped = []
        backend.subscribe_evictions(lambda key, value: dropped.append(key))
        backend.put("a", 1)
        backend.put("b", 2)
        assert dropped == ["a"]
