"""The batched engine's latency model: windows, flushes, overlap."""

import random

import pytest

from repro.simnet.delay import ConstantDelay
from repro.storage import BatchedRemoteBackend, ShardedBackend

READ = 0.01
WRITE = 0.02
MARGINAL = 0.001


def make_backend(**kwargs):
    kwargs.setdefault("read_delay", ConstantDelay(READ))
    kwargs.setdefault("write_delay", ConstantDelay(WRITE))
    kwargs.setdefault("per_key_cost", MARGINAL)
    kwargs.setdefault("rng", random.Random(0))
    return BatchedRemoteBackend(**kwargs)


class TestConstruction:
    def test_rejects_negative_per_key_cost(self):
        with pytest.raises(ValueError):
            make_backend(per_key_cost=-0.001)

    def test_rejects_zero_batch_window(self):
        with pytest.raises(ValueError):
            make_backend(batch_window=0)

    def test_kind(self):
        assert make_backend().kind == "batched"


class TestWindowAccounting:
    def test_first_op_pays_full_round_trip(self):
        backend = make_backend()
        backend.get("a")
        assert backend.pending_latency() == pytest.approx(READ + MARGINAL)

    def test_coalesced_ops_pay_marginal_only(self):
        backend = make_backend()
        for key in ("a", "b", "c"):
            backend.get(key)
        assert backend.pending_latency() == pytest.approx(
            READ + 3 * MARGINAL
        )

    def test_get_many_is_one_round_trip(self):
        backend = make_backend()
        backend.get_many([f"k{i}" for i in range(10)])
        assert backend.pending_latency() == pytest.approx(
            READ + 10 * MARGINAL
        )

    def test_remove_many_is_one_round_trip(self):
        backend = make_backend()
        backend.remove_many([f"k{i}" for i in range(8)])
        assert backend.pending_latency() == pytest.approx(
            WRITE + 8 * MARGINAL
        )

    def test_direction_turn_flushes(self):
        backend = make_backend()
        backend.get("a")  # opens a read window
        backend.put("b", 1)  # turn: flush, open a write window
        backend.get("c")  # turn again
        assert backend.pending_latency() == pytest.approx(
            (READ + MARGINAL) + (WRITE + MARGINAL) + (READ + MARGINAL)
        )
        assert backend.batches_flushed == 2

    def test_window_full_flushes(self):
        backend = make_backend(batch_window=4)
        backend.get_many([f"k{i}" for i in range(10)])
        # 10 keys at window 4: three batches (4 + 4 + 2).
        assert backend.pending_latency() == pytest.approx(
            3 * READ + 10 * MARGINAL
        )
        assert backend.batches_flushed == 2  # third is still open
        backend.flush()
        assert backend.batches_flushed == 3
        assert backend.keys_batched == 10

    def test_drain_closes_window(self):
        backend = make_backend()
        backend.get("a")
        backend.drain_latency()
        backend.get("b")
        # The second get pays a fresh round trip: no coalescing across
        # drain points (the pipeline was already sent).
        assert backend.pending_latency() == pytest.approx(READ + MARGINAL)

    def test_flush_itself_charges_nothing(self):
        backend = make_backend()
        backend.get("a")
        before = backend.pending_latency()
        backend.flush()
        backend.flush()
        assert backend.pending_latency() == before

    def test_equal_medians_with_serialized_engine(self):
        """Single isolated ops cost one full round trip, exactly like
        the serialized engine (plus the marginal) — only coalesced
        round-trip *count* differs."""
        backend = make_backend()
        backend.get("a")
        single = backend.drain_latency()
        assert single == pytest.approx(READ + MARGINAL)


class TestOverlapDrain:
    def test_no_overlap_charges_in_full(self):
        backend = make_backend(overlap=False)
        backend.get("a")
        assert backend.drain_latency(concurrent=10.0) == pytest.approx(
            READ + MARGINAL
        )

    def test_overlap_clips_against_concurrent(self):
        backend = make_backend(overlap=True)
        backend.get_many([f"k{i}" for i in range(5)])
        pending = backend.pending_latency()
        concurrent = pending / 2
        charged = backend.drain_latency(concurrent=concurrent)
        assert charged == pytest.approx(pending - concurrent)

    def test_overlap_never_drains_more_than_accrued(self):
        backend = make_backend(overlap=True)
        backend.get("a")
        pending = backend.pending_latency()
        assert backend.drain_latency(concurrent=0.0) == pytest.approx(
            pending
        )

    def test_fully_hidden_under_long_transit(self):
        backend = make_backend(overlap=True)
        backend.get("a")
        pending = backend.pending_latency()
        assert backend.drain_latency(concurrent=pending * 3) == 0.0
        assert backend.overlap_hidden == pytest.approx(pending)

    def test_pool_never_drained_twice(self):
        backend = make_backend(overlap=True)
        backend.get("a")
        backend.drain_latency(concurrent=100.0)  # fully hidden ...
        assert backend.pending_latency() == 0.0
        assert backend.drain_latency() == 0.0  # ... and gone for good

    def test_negative_concurrent_is_treated_as_zero(self):
        backend = make_backend(overlap=True)
        backend.get("a")
        pending = backend.pending_latency()
        assert backend.drain_latency(concurrent=-5.0) == pytest.approx(
            pending
        )


class TestDelegation:
    def test_batched_ops_round_trip_through_inner(self):
        backend = make_backend(inner=ShardedBackend(n_shards=4))
        backend.put_many([(f"k{i}", i, 1) for i in range(12)])
        assert backend.get_many([f"k{i}" for i in range(12)]) == {
            f"k{i}": i for i in range(12)
        }
        removed = backend.remove_many([f"k{i}" for i in range(12)])
        assert len(removed) == 12
        assert len(backend) == 0

    def test_inner_evictions_are_forwarded(self):
        inner = ShardedBackend(n_shards=1, max_entries_per_shard=1)
        backend = make_backend(inner=inner)
        dropped = []
        backend.subscribe_evictions(lambda key, value: dropped.append(key))
        backend.put_many([("a", 1, 0), ("b", 2, 0)])
        assert dropped == ["a"]

    def test_op_counts(self):
        backend = make_backend()
        backend.put("a", 1)
        backend.get("a")
        backend.get_many(["a"])
        backend.remove_many(["a"])
        assert backend.op_counts == {
            "put": 1,
            "get": 1,
            "get_many": 1,
            "remove_many": 1,
        }
