"""Partitioning: balanced, deterministic, and loss-free."""

import pytest

from repro.parallel import assign_users, partition_users, shard_trace
from repro.workload.trace import (
    CartAdd,
    PageView,
    ProductUpdate,
)


def test_assignment_is_balanced_and_total():
    ids = [f"u{i}" for i in range(25)]
    shards = partition_users(ids, 4)
    assert sorted(uid for shard in shards for uid in shard) == sorted(ids)
    sizes = [len(shard) for shard in shards]
    assert max(sizes) - min(sizes) <= 1


def test_assignment_is_deterministic_and_order_free():
    ids = [f"u{i}" for i in range(17)]
    assert assign_users(ids, 3) == assign_users(list(reversed(ids)), 3)


def test_one_shard_owns_everyone():
    ids = ["u3", "u1", "u2"]
    assert partition_users(ids, 1) == [sorted(ids)]


def test_rejects_nonpositive_shards():
    with pytest.raises(ValueError):
        assign_users(["u1"], 0)


def test_shard_trace_keeps_all_product_updates(workload):
    _, _, trace = workload
    updates = [
        event for event in trace.events
        if isinstance(event, ProductUpdate)
    ]
    assert updates, "workload must exercise the write stream"
    shards = partition_users(sorted(trace.users_seen()), 4)
    for owned in shards:
        sliced = shard_trace(trace, owned)
        kept_updates = [
            event for event in sliced.events
            if isinstance(event, ProductUpdate)
        ]
        assert kept_updates == updates
        assert sliced.duration == trace.duration


def test_shard_traces_partition_user_events(workload):
    _, _, trace = workload
    shards = partition_users(sorted(trace.users_seen()), 3)
    per_shard = [shard_trace(trace, owned) for owned in shards]
    # Every user event lands on exactly one shard...
    user_events = [
        event for event in trace.events
        if isinstance(event, (PageView, CartAdd))
    ]
    scattered = [
        event
        for sliced in per_shard
        for event in sliced.events
        if isinstance(event, (PageView, CartAdd))
    ]
    assert len(scattered) == len(user_events)
    # ... and only events of users that shard owns.
    for owned, sliced in zip(shards, per_shard):
        members = set(owned)
        for event in sliced.events:
            if isinstance(event, (PageView, CartAdd)):
                assert event.user_id in members


def test_shard_trace_preserves_event_order(workload):
    _, _, trace = workload
    (owned,) = partition_users(sorted(trace.users_seen()), 1)
    sliced = shard_trace(trace, owned)
    assert sliced.events == list(trace.events)


def test_shard_trace_carries_the_world(workload):
    from repro.workload import CatalogConfig, UserPopulationConfig, WorldSpec

    _, _, trace = workload
    trace.world = WorldSpec(
        catalog=CatalogConfig(n_products=20),
        users=UserPopulationConfig(n_users=10),
        seed=5,
    )
    try:
        for owned in partition_users(sorted(trace.users_seen()), 3):
            sliced = shard_trace(trace, owned)
            assert sliced.world is trace.world
            assert sliced.duration == trace.duration
    finally:
        trace.world = None  # module-scoped fixture: leave it clean
