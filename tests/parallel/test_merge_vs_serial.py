"""Merged sharded runs against the serial run: what must agree.

Sharding preserves the workload exactly (every page view replays on
exactly one shard) but changes cross-user interleaving on shared
state — edge caches are no longer warmed by other shards' users, and
the shared network RNG stream is consumed per shard. So:

* workload-determined counts are **exactly** equal (page views, PLT
  observation counts, responses recorded, coherence reads checked);
* coherence and staleness **verdicts** are identical — zero Δ
  violations on both sides of every comparison here;
* PLT quantiles agree **statistically**: the merged quantile lands
  within a small rank band of the serial distribution (calibrated
  at ≤ 0.10 rank drift for the median across shards ∈ {2, 4, 8};
  asserted with headroom below), while the quantile *sketches* merge
  exactly and stay within their documented ≤1% relative-accuracy
  guarantee of the exactly-merged histogram.
"""

import bisect

import pytest

from repro.harness.runner import SimulationRunner
from repro.harness.scenarios import Scenario, ScenarioSpec
from repro.obs.quantile import QuantileSketch
from repro.parallel import ShardedSimulationRunner, run_shard

SHARD_COUNTS = (2, 4, 8)


def _spec():
    return ScenarioSpec(scenario=Scenario.SPEED_KIT, delta=60.0, seed=0)


@pytest.fixture(scope="module")
def serial(workload):
    catalog, users, trace = workload
    return SimulationRunner(_spec(), catalog, users, trace).run()


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def merged(request, workload):
    catalog, users, trace = workload
    return ShardedSimulationRunner(
        _spec(),
        catalog,
        users,
        trace,
        n_shards=request.param,
        workers=1,
    ).run()


def test_workload_counters_are_exact(serial, merged):
    assert merged.page_views == serial.page_views
    assert merged.plt.count == serial.plt.count
    assert sum(merged.served_by_layer.values()) == sum(
        serial.served_by_layer.values()
    )
    assert merged.reads_checked == serial.reads_checked
    assert merged.failed_responses == serial.failed_responses


def test_coherence_verdicts_are_identical(serial, merged):
    assert serial.delta_violations == 0
    assert merged.delta_violations == serial.delta_violations
    assert (merged.max_staleness == 0) == (serial.max_staleness == 0)


def test_merged_quantiles_track_serial_within_rank_band(serial, merged):
    values = sorted(serial.plt.values)
    for q, band in ((50, 0.15), (95, 0.04), (99, 0.02)):
        merged_value = merged.plt.percentile(q)
        rank = bisect.bisect_right(values, merged_value) / len(values)
        assert abs(rank - q / 100) <= band, (
            f"merged p{q}={merged_value:.4f} sits at serial rank "
            f"{rank:.3f}, outside ±{band} of {q / 100}"
        )


def test_sketch_merge_is_exact_and_within_documented_error(workload):
    """Merging per-shard sketches equals one sketch over all values
    (bucket merge, order-independent), and the merged sketch answers
    within the sketch's documented relative accuracy of the exactly
    merged histogram."""
    catalog, users, trace = workload
    runner = ShardedSimulationRunner(
        _spec(), catalog, users, trace, n_shards=4, workers=1
    )
    outcomes = [run_shard(task) for task in runner.tasks()]
    merged_sketch = QuantileSketch()
    direct_sketch = QuantileSketch()
    all_values = []
    for outcome in outcomes:
        shard_sketch = QuantileSketch()
        shard_sketch.observe_many(outcome.result.plt.values)
        merged_sketch.merge(shard_sketch)
        all_values.extend(outcome.result.plt.values)
    direct_sketch.observe_many(all_values)
    exact = sorted(all_values)
    for q in (0.5, 0.95, 0.99):
        # Exact merge: identical answers regardless of sharding.
        assert merged_sketch.quantile(q) == direct_sketch.quantile(q)
        # Documented accuracy against the exact distribution (the
        # sketch guarantees ~0.25% relative error; 1% is the bound
        # the merge contract documents).
        index = min(len(exact) - 1, int(q * len(exact)))
        assert merged_sketch.quantile(q) == pytest.approx(
            exact[index], rel=0.01
        )
