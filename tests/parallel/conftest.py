"""Shared workload fixtures for the parallel-simulation tests."""

import random

import pytest

from repro.workload.catalog import CatalogConfig, generate_catalog
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.users import UserPopulationConfig, generate_users


def build_workload(seed=0, n_users=24, n_products=40, duration=600.0):
    catalog = generate_catalog(
        CatalogConfig(n_products=n_products), random.Random(seed)
    )
    users = generate_users(
        UserPopulationConfig(n_users=n_users), random.Random(seed + 1)
    )
    trace = WorkloadGenerator(
        catalog, users, WorkloadConfig(duration=duration)
    ).generate(random.Random(seed + 2))
    return catalog, users, trace


@pytest.fixture(scope="session")
def workload():
    """One small deterministic workload shared by the whole module."""
    return build_workload()
