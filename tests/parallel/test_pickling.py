"""Worker payloads must cross the process boundary as plain data.

Every scenario-spec variant the CLI can construct — fault profiles,
retry policies, storage backends, replication, tracing — must pickle
inside a :class:`~repro.parallel.ShardTask` and build an identical
runner on the other side. Live objects (generators, tracers, fault
injectors, backend instances) are constructed *inside* the worker from
this plain data, never shipped.
"""

import pickle

import pytest

from repro.faults import FaultProfile, RetryPolicy
from repro.harness.scenarios import Scenario, ScenarioSpec
from repro.parallel import ShardTask, ShardedSimulationRunner, run_shard
from repro.storage import BackendSpec

SPEC_VARIANTS = {
    "plain": dict(scenario=Scenario.SPEED_KIT),
    "classic-cdn": dict(scenario=Scenario.CLASSIC_CDN),
    "no-cache": dict(scenario=Scenario.NO_CACHE),
    "ablation-sketch-only": dict(
        scenario=Scenario.SPEED_KIT_SKETCH_ONLY
    ),
    "adaptive-ttl": dict(scenario=Scenario.SPEED_KIT, adaptive_ttl=True),
    "swr-prefetch": dict(
        scenario=Scenario.SPEED_KIT,
        stale_while_revalidate=True,
        prefetch=True,
    ),
    "segments": dict(scenario=Scenario.SPEED_KIT, n_segments=27),
    "outage": dict(
        scenario=Scenario.SPEED_KIT, outage=(100.0, 200.0)
    ),
    "backend-sharded": dict(
        scenario=Scenario.SPEED_KIT,
        backend=BackendSpec(kind="sharded", n_shards=8, seed=3),
    ),
    "backend-batched-overlap": dict(
        scenario=Scenario.SPEED_KIT,
        backend=BackendSpec(kind="batched", overlap=True),
    ),
    "backend-write-behind": dict(
        scenario=Scenario.SPEED_KIT,
        backend=BackendSpec(kind="write-behind", flush_interval=2.0),
    ),
    "replication": dict(
        scenario=Scenario.SPEED_KIT,
        replicate_pops=True,
        n_regions=3,
    ),
    "faults-retry-stale": dict(
        scenario=Scenario.SPEED_KIT,
        fault_profile=FaultProfile.named("flaky"),
        retry=RetryPolicy(budget=2.0),
        stale_if_error=30.0,
    ),
    "tracing": dict(scenario=Scenario.SPEED_KIT, trace_requests=True),
}


@pytest.mark.parametrize("variant", sorted(SPEC_VARIANTS))
def test_every_spec_variant_round_trips(variant, workload):
    catalog, users, trace = workload
    spec = ScenarioSpec(**SPEC_VARIANTS[variant])
    tasks = ShardedSimulationRunner(
        spec, catalog, users, trace, n_shards=2
    ).tasks()
    for task in tasks:
        clone = pickle.loads(pickle.dumps(task))
        assert isinstance(clone, ShardTask)
        assert clone.index == task.index
        assert clone.spec == task.spec
        assert clone.shard_spec().seed == task.shard_spec().seed
        assert len(clone.trace) == len(task.trace)
        assert len(clone.users) == len(task.users)


def test_pickled_task_replays_identically(workload):
    """A round-tripped payload produces the same result as the
    original — the property the worker pool relies on."""
    catalog, users, trace = workload
    spec = ScenarioSpec(scenario=Scenario.SPEED_KIT, delta=60.0)
    task = ShardedSimulationRunner(
        spec, catalog, users, trace, n_shards=2
    ).tasks()[0]
    original = run_shard(task).result
    clone = run_shard(pickle.loads(pickle.dumps(task))).result
    assert clone.to_dict() == original.to_dict()
    assert clone.plt.values == original.plt.values


def test_results_pickle_back(workload):
    """The return leg: a RunResult (with its registry and aliased
    histograms) survives pickling, preserving the alias the merge
    guard depends on."""
    catalog, users, trace = workload
    spec = ScenarioSpec(scenario=Scenario.SPEED_KIT, delta=60.0)
    task = ShardedSimulationRunner(
        spec, catalog, users, trace, n_shards=2
    ).tasks()[0]
    outcome = run_shard(task)
    clone = pickle.loads(pickle.dumps(outcome))
    assert clone.result.metrics.histogram("plt.all") is clone.result.plt
    assert clone.result.to_dict() == outcome.result.to_dict()
