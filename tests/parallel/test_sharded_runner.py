"""The orchestrator's determinism contract."""

import pytest

from repro.harness.runner import SimulationRunner
from repro.harness.scenarios import Scenario, ScenarioSpec
from repro.parallel import ShardedSimulationRunner
from repro.sim.rng import spawn_seed


def _spec(**kwargs):
    kwargs.setdefault("scenario", Scenario.SPEED_KIT)
    kwargs.setdefault("delta", 60.0)
    return ScenarioSpec(**kwargs)


def test_one_shard_is_bit_identical_to_serial(workload):
    catalog, users, trace = workload
    serial = SimulationRunner(_spec(), catalog, users, trace).run()
    sharded = ShardedSimulationRunner(
        _spec(), catalog, users, trace, n_shards=1
    ).run()
    assert sharded.to_dict() == serial.to_dict()
    # Down to the raw PLT observations, in order.
    assert sharded.plt.values == serial.plt.values
    assert sharded.n_shards == 1


def test_results_do_not_depend_on_worker_count(workload):
    catalog, users, trace = workload
    by_workers = [
        ShardedSimulationRunner(
            _spec(), catalog, users, trace, n_shards=3, workers=workers
        ).run()
        for workers in (1, 2)
    ]
    assert by_workers[0].to_dict() == by_workers[1].to_dict()
    assert by_workers[0].plt.values == by_workers[1].plt.values


def test_shards_reseed_via_spawn(workload):
    catalog, users, trace = workload
    runner = ShardedSimulationRunner(
        _spec(seed=99), catalog, users, trace, n_shards=3
    )
    tasks = runner.tasks()
    assert [task.index for task in tasks] == [0, 1, 2]
    seeds = [task.shard_spec().seed for task in tasks]
    assert seeds == [spawn_seed(99, 0), spawn_seed(99, 1), spawn_seed(99, 2)]
    assert len(set(seeds)) == 3
    assert 99 not in seeds


def test_single_shard_task_keeps_root_seed(workload):
    catalog, users, trace = workload
    (task,) = ShardedSimulationRunner(
        _spec(seed=5), catalog, users, trace, n_shards=1
    ).tasks()
    assert task.shard_spec().seed == 5


def test_merged_result_counts_shards_and_throughput(workload):
    catalog, users, trace = workload
    result = ShardedSimulationRunner(
        _spec(), catalog, users, trace, n_shards=3, workers=1
    ).run()
    assert result.n_shards == 3
    assert result.kernel_events > 0
    assert result.wall_seconds > 0
    assert result.events_per_second() > 0
    record = result.to_dict()
    assert record["n_shards"] == 3
    assert record["kernel_events"] == result.kernel_events


def test_rejects_bad_shard_and_worker_counts(workload):
    catalog, users, trace = workload
    with pytest.raises(ValueError):
        ShardedSimulationRunner(
            _spec(), catalog, users, trace, n_shards=0
        )
    with pytest.raises(ValueError):
        ShardedSimulationRunner(
            _spec(), catalog, users, trace, n_shards=2, workers=0
        )


def test_merge_rejects_mismatched_scenarios(workload):
    catalog, users, trace = workload
    a = SimulationRunner(_spec(), catalog, users, trace).run()
    b = SimulationRunner(
        _spec(scenario=Scenario.CLASSIC_CDN), catalog, users, trace
    ).run()
    with pytest.raises(ValueError):
        a.merge(b)
