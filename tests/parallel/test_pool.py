"""The real worker pool (marked: spawns OS processes).

CI matrices that cannot fork reliably under the test runner set
``REPRO_PARALLEL_WORKERS=1``, which routes these runs through the
in-process path — same merged results by the determinism contract,
which is exactly what the unmarked tests already verify.
"""

import os

import pytest

from repro.harness.scenarios import Scenario, ScenarioSpec
from repro.parallel import ShardedSimulationRunner, default_workers


def _pool_workers():
    override = os.environ.get("REPRO_PARALLEL_WORKERS")
    if override:  # empty string means unset (CI matrix default)
        return max(1, int(override))
    return 2


@pytest.mark.multiprocess
def test_pool_run_matches_in_process(workload):
    catalog, users, trace = workload
    spec = ScenarioSpec(scenario=Scenario.SPEED_KIT, delta=60.0)
    sequential = ShardedSimulationRunner(
        spec, catalog, users, trace, n_shards=4, workers=1
    ).run()
    pooled = ShardedSimulationRunner(
        spec, catalog, users, trace, n_shards=4, workers=_pool_workers()
    ).run()
    assert pooled.to_dict() == sequential.to_dict()
    assert pooled.plt.values == sequential.plt.values


def test_default_workers_honors_env(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "1")
    assert default_workers(8) == 1
    monkeypatch.delenv("REPRO_PARALLEL_WORKERS")
    assert 1 <= default_workers(8) <= 8
    assert default_workers(1) == 1
