"""Exact-merge semantics of the metric registries.

The sharded orchestrator folds per-shard registries into one; these
merges must be *exact* — no sampling, no averaging of averages:
counters sum, gauges add, histograms concatenate raw values, time
series interleave in time order, and quantile sketches merge bucket
by bucket (order-independent).
"""

from repro.obs import MetricsRegistry
from repro.sim.metrics import MetricRegistry


def test_counters_and_gauges_sum():
    a, b = MetricRegistry(), MetricRegistry()
    a.counter("hits").inc(3)
    b.counter("hits").inc(4)
    b.counter("misses").inc(2)
    a.gauge("depth").set(5)
    b.gauge("depth").set(7)
    a.merge(b)
    assert a.counter("hits").value == 7
    assert a.counter("misses").value == 2
    assert a.gauge("depth").value == 12


def test_histograms_concatenate_raw_values():
    a, b = MetricRegistry(), MetricRegistry()
    for value in (1.0, 3.0):
        a.histogram("plt").observe(value)
    for value in (2.0, 4.0):
        b.histogram("plt").observe(value)
    a.merge(b)
    assert sorted(a.histogram("plt").values) == [1.0, 2.0, 3.0, 4.0]
    # Quantiles of the merged histogram are quantiles of the union —
    # exactly what a serial run observing all four values reports.
    assert a.histogram("plt").median() == 2.5


def test_series_interleave_in_time_order():
    a, b = MetricRegistry(), MetricRegistry()
    a.series("timeline").record(1.0, 10.0)
    a.series("timeline").record(3.0, 30.0)
    b.series("timeline").record(2.0, 20.0)
    a.merge(b)
    assert a.series("timeline").points == [
        (1.0, 10.0),
        (2.0, 20.0),
        (3.0, 30.0),
    ]


def test_merge_is_associative_on_counters_and_histograms():
    def registry(values):
        reg = MetricRegistry()
        for value in values:
            reg.counter("n").inc()
            reg.histogram("h").observe(value)
        return reg

    left = registry([1.0]).merge(registry([2.0])).merge(registry([3.0]))
    right = registry([1.0]).merge(
        registry([2.0]).merge(registry([3.0]))
    )
    assert left.counter("n").value == right.counter("n").value == 3
    assert sorted(left.histogram("h").values) == sorted(
        right.histogram("h").values
    )


def test_sketches_merge_exactly():
    a, b = MetricsRegistry(), MetricsRegistry()
    direct = MetricsRegistry()
    for i in range(500):
        value = 0.01 * (i + 1)
        target = a if i % 2 else b
        target.sketch("lat").observe(value)
        direct.sketch("lat").observe(value)
    a.merge(b)
    for q in (0.5, 0.9, 0.99):
        assert a.sketch("lat").quantile(q) == direct.sketch(
            "lat"
        ).quantile(q)
    assert a.sketch("lat").count == 500


def test_metrics_registry_merge_includes_base_collectors():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("reqs").inc()
    b.counter("reqs").inc()
    b.sketch("lat").observe(1.0)
    a.merge(b)
    assert a.counter("reqs").value == 2
    assert a.sketch("lat").count == 1
