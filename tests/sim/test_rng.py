"""Tests for named RNG streams."""

from repro.sim import RngStreams


def test_same_name_same_stream_object():
    streams = RngStreams(7)
    assert streams.stream("a") is streams.stream("a")


def test_streams_are_reproducible_across_instances():
    first = RngStreams(7).stream("workload").random()
    second = RngStreams(7).stream("workload").random()
    assert first == second


def test_different_names_give_different_sequences():
    streams = RngStreams(7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_creation_order_does_not_matter():
    forward = RngStreams(3)
    forward.stream("x")
    x_then = forward.stream("y").random()

    backward = RngStreams(3)
    backward.stream("y")
    y_first = backward.stream("y").random()

    # "y" produced the same value whether or not "x" was created first.
    assert x_then == y_first


def test_different_root_seeds_differ():
    a = RngStreams(1).stream("s").random()
    b = RngStreams(2).stream("s").random()
    assert a != b


def test_fork_is_deterministic_and_independent():
    root = RngStreams(9)
    fork_a = root.fork("client-1")
    fork_b = root.fork("client-2")
    again = RngStreams(9).fork("client-1")
    assert fork_a.stream("nav").random() == again.stream("nav").random()
    assert fork_a.root_seed != fork_b.root_seed
