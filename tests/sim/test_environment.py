"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(3.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [3.0]


def test_timeout_zero_runs_at_current_time():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(0.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 5.0, "b"))
    env.process(proc(env, 1.0, "a"))
    env.process(proc(env, 9.0, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_process_return_value_propagates():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2.0)
        return "payload"

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == ["payload"]


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["boom"]


def test_unwaited_failed_process_raises_at_step():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise RuntimeError("unobserved")

    env.process(child(env))
    with pytest.raises(RuntimeError, match="unobserved"):
        env.run()


def test_manual_event_succeed():
    env = Environment()
    results = []
    gate = env.event()

    def waiter(env, gate):
        value = yield gate
        results.append((env.now, value))

    def opener(env, gate):
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter(env, gate))
    env.process(opener(env, gate))
    env.run()
    assert results == [(7.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(RuntimeError):
        gate.succeed(2)


def test_all_of_waits_for_everything():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="one")
        t2 = env.timeout(5.0, value="five")
        values = yield env.all_of([t1, t2])
        results.append((env.now, sorted(values.values())))

    env.process(proc(env))
    env.run()
    assert results == [(5.0, ["five", "one"])]


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        values = yield env.any_of([t1, t2])
        results.append((env.now, list(values.values())))

    env.process(proc(env))
    env.run()
    assert results == [(1.0, ["fast"])]


def test_interrupt_wakes_process_early():
    env = Environment()
    results = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            results.append((env.now, exc.cause))

    def interrupter(env, victim):
        yield env.timeout(3.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert results == [(3.0, "wake up")]


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    proc = env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()
    assert proc.triggered


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    assert env.peek() == 4.0


def test_peek_empty_queue_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_nested_processes_three_deep():
    env = Environment()
    trace = []

    def leaf(env):
        yield env.timeout(1.0)
        trace.append("leaf")
        return 1

    def middle(env):
        value = yield env.process(leaf(env))
        trace.append("middle")
        return value + 1

    def root(env):
        value = yield env.process(middle(env))
        trace.append("root")
        return value + 1

    proc = env.process(root(env))
    env.run()
    assert trace == ["leaf", "middle", "root"]
    assert proc.value == 3
