"""The kernel hot path after the raw-speed pass.

The event drain loop in :meth:`Environment.run` was inlined (one heap
pop per kernel event, no per-event method dispatch), events carry
``__slots__``, and the kernel counts its pops. These tests pin the
semantics that rewrite must preserve: ordering, error propagation,
defusing, and the step counter the throughput metric is built on.
"""

import heapq
import math

import pytest

from repro.sim import Environment, RngStreams
from repro.sim.rng import spawn_seed


# -- kernel drain loop ------------------------------------------------------


def test_steps_counts_every_event_pop():
    env = Environment()

    def ticker():
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(ticker())
    env.run()
    # 5 timeouts + the process-start event + process-end bookkeeping:
    # the exact number is an implementation detail, but it must be
    # stable and strictly positive.
    assert env.steps > 5
    before = env.steps
    env.run()  # drained queue: no further steps
    assert env.steps == before


def test_fifo_order_among_simultaneous_events():
    env = Environment()
    order = []

    def maker(tag):
        def proc():
            order.append(tag)
            return None
            yield  # pragma: no cover - makes this a generator

        return proc()

    for tag in range(50):
        env.process(maker(tag))
    env.run()
    assert order == list(range(50))


def test_time_order_with_many_interleaved_timeouts():
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append(delay)

    delays = [((i * 7919) % 1000) / 10.0 for i in range(500)]
    for delay in delays:
        env.process(waiter(delay))
    env.run()
    assert fired == sorted(delays)
    assert env.now == max(delays)


def test_failed_event_still_raises_out_of_run():
    env = Environment()

    def failer():
        raise RuntimeError("boom")
        yield  # pragma: no cover - makes this a generator

    env.process(failer())
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_heap_tiebreak_is_insertion_sequence():
    # The kernel's queue entries are (time, seq, event): equal times
    # must never compare events (no __lt__ on Event) and must preserve
    # schedule order.
    entries = [(1.0, seq, object()) for seq in range(100)]
    heap = []
    for entry in reversed(entries):
        heapq.heappush(heap, entry)
    popped = [heapq.heappop(heap)[1] for _ in range(len(heap))]
    assert popped == list(range(100))


def test_events_reject_ad_hoc_attributes():
    # __slots__ on the event types is part of the hot-path contract:
    # accidental per-event attribute writes (which would silently cost
    # a dict per event) fail loudly instead.
    env = Environment()
    event = env.timeout(1.0)
    with pytest.raises(AttributeError):
        event.arbitrary_attribute = 1


# -- spawn-keyed substreams -------------------------------------------------


def test_spawn_seed_is_stable_and_index_keyed():
    assert spawn_seed(7, 0) == spawn_seed(7, 0)
    assert spawn_seed(7, 0) != spawn_seed(7, 1)
    assert spawn_seed(7, 0) != spawn_seed(8, 0)
    assert RngStreams(7).spawn(3).root_seed == spawn_seed(7, 3)


def test_spawn_families_do_not_collide_with_root_or_forks():
    seeds = {RngStreams(11).root_seed}
    seeds.add(RngStreams(11).fork("client-1").root_seed)
    for index in range(64):
        seeds.add(spawn_seed(11, index))
    assert len(seeds) == 66  # all distinct


def test_spawn_substreams_are_independent_chi_square():
    """Chi-square uniformity + overlap check across spawned families.

    Pool the first draws of many spawned substreams: if families were
    correlated (e.g. sequential seeding), the pooled sample would
    cluster. The chi-square statistic over 16 bins must sit inside a
    generous acceptance band, and pairwise overlap of the first 100
    draws of neighbouring families must be empty.
    """
    n_families, n_bins = 256, 16
    draws = [
        RngStreams(0).spawn(index).stream("network").random()
        for index in range(n_families)
    ]
    counts = [0] * n_bins
    for value in draws:
        counts[min(n_bins - 1, int(value * n_bins))] += 1
    expected = n_families / n_bins
    chi_square = sum(
        (count - expected) ** 2 / expected for count in counts
    )
    # 15 degrees of freedom: mean 15, std sqrt(30) ≈ 5.48. Accept
    # within ~5 sigma — catches systematic correlation, never flakes
    # (the draw set is fully deterministic anyway).
    assert chi_square < 15 + 5 * math.sqrt(30)

    first = [
        tuple(RngStreams(0).spawn(i).stream("network").random()
              for _ in range(100))
        for i in (0, 1)
    ]
    assert not set(first[0]) & set(first[1])
