"""Tests for metric collectors."""

import pytest

from repro.sim import Counter, Gauge, Histogram, MetricRegistry, TimeSeries


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0.0

    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(10)
        g.add(-3)
        assert g.value == 7.0


class TestHistogram:
    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(50)

    def test_single_value(self):
        h = Histogram("h")
        h.observe(5.0)
        assert h.percentile(0) == 5.0
        assert h.percentile(100) == 5.0
        assert h.median() == 5.0

    def test_median_of_odd_count(self):
        h = Histogram("h")
        h.extend([1, 2, 3, 4, 5])
        assert h.median() == 3.0

    def test_median_interpolates_even_count(self):
        h = Histogram("h")
        h.extend([1, 2, 3, 4])
        assert h.median() == 2.5

    def test_percentile_bounds_checked(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_unsorted_input_handled(self):
        h = Histogram("h")
        h.extend([9, 1, 5, 3, 7])
        assert h.min() == 1
        assert h.max() == 9
        assert h.median() == 5

    def test_mean_and_stddev(self):
        h = Histogram("h")
        h.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert h.mean() == 5.0
        assert h.stddev() == pytest.approx(2.138, abs=1e-3)

    def test_stddev_of_single_value_is_zero(self):
        h = Histogram("h")
        h.observe(3.0)
        assert h.stddev() == 0.0

    def test_summary_keys(self):
        h = Histogram("h")
        h.extend(range(100))
        summary = h.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "min", "max"}
        assert summary["count"] == 100
        assert summary["p95"] == pytest.approx(94.05)

    def test_summary_of_empty_histogram(self):
        assert Histogram("h").summary() == {"count": 0}

    def test_observe_after_percentile_query(self):
        h = Histogram("h")
        h.extend([5, 1, 3])
        assert h.median() == 3
        h.observe(0)
        assert h.min() == 0


class TestTimeSeries:
    def test_record_and_filter(self):
        ts = TimeSeries("s")
        ts.record(1.0, 10)
        ts.record(2.0, 20)
        ts.record(3.0, 30)
        assert ts.values_between(1.5, 3.0) == [20, 30]
        assert len(ts) == 3


class TestMetricRegistry:
    def test_same_name_returns_same_object(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.series("s") is reg.series("s")

    def test_snapshot_contains_all_metrics(self):
        reg = MetricRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("size").set(7)
        reg.histogram("lat").observe(1.5)
        reg.series("ts").record(0.0, 1.0)
        snap = reg.snapshot()
        assert snap["hits"] == 3
        assert snap["size"] == 7
        assert snap["lat"]["count"] == 1
        assert snap["ts"] == 1
