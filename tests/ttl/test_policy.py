"""Tests for the adaptive TTL policy."""

import pytest

from repro.http import URL
from repro.origin import ResourceKind, ResourceSpec
from repro.origin.server import SEGMENT_PARAM
from repro.ttl import AdaptiveTtlPolicy, TtlEstimator


def spec(kind=ResourceKind.PAGE, ttl_hint=None):
    return ResourceSpec(
        name="r", pattern="/r/{id}", kind=kind, ttl_hint=ttl_hint
    )


@pytest.fixture
def policy():
    return AdaptiveTtlPolicy(
        TtlEstimator(default_ttl=1000.0, max_ttl=5000.0, min_ttl=1.0)
    )


def test_static_assets_are_immutable(policy):
    cc = policy.cache_control(
        spec(ResourceKind.STATIC), URL.of("/static/a.js"), False
    )
    assert cc.immutable
    assert cc.max_age == AdaptiveTtlPolicy.STATIC_TTL


def test_user_personalized_is_private(policy):
    cc = policy.cache_control(spec(), URL.of("/r/1"), True)
    assert cc.no_store and cc.private


def test_unwritten_resource_gets_default(policy):
    cc = policy.cache_control(spec(), URL.of("/r/1"), False)
    assert cc.max_age == 1000.0
    assert cc.public


def test_writes_shorten_ttl(policy):
    url = URL.of("/r/1")
    key = url.cache_key()
    policy.observe_resource_write(key, now=0.0)
    policy.observe_resource_write(key, now=10.0)
    cc = policy.cache_control(spec(), url, False)
    assert cc.max_age is not None
    assert cc.max_age < 1000.0


def test_segment_variants_share_one_estimate(policy):
    base = URL.of("/r/1")
    policy.observe_resource_write(base.cache_key(), now=0.0)
    policy.observe_resource_write(base.cache_key(), now=10.0)
    variant = base.with_param(SEGMENT_PARAM, "s5")
    cc_base = policy.cache_control(spec(), base, False)
    cc_variant = policy.cache_control(spec(), variant, False)
    assert cc_base.max_age == cc_variant.max_age


def test_ttl_hint_wins(policy):
    cc = policy.cache_control(spec(ttl_hint=42.0), URL.of("/r/1"), False)
    assert cc.max_age == 42.0


def test_scorching_key_becomes_no_store():
    policy = AdaptiveTtlPolicy(
        TtlEstimator(min_worthwhile=1.0, min_ttl=0.1)
    )
    url = URL.of("/r/1")
    policy.observe_resource_write(url.cache_key(), now=0.0)
    policy.observe_resource_write(url.cache_key(), now=0.01)
    cc = policy.cache_control(spec(), url, False)
    assert cc.no_store


def test_swr_attached_when_configured():
    policy = AdaptiveTtlPolicy(stale_while_revalidate=25.0)
    cc = policy.cache_control(spec(), URL.of("/r/1"), False)
    assert cc.stale_while_revalidate == 25.0
