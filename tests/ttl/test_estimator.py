"""Tests for the write-rate TTL estimator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ttl import KeyWriteStats, TtlEstimator


class TestKeyWriteStats:
    def test_first_write_sets_no_gap(self):
        stats = KeyWriteStats()
        stats.observe(10.0, alpha=0.2)
        assert stats.writes == 1
        assert stats.mean_gap is None
        assert stats.write_rate() is None

    def test_second_write_establishes_gap(self):
        stats = KeyWriteStats()
        stats.observe(10.0, alpha=0.2)
        stats.observe(30.0, alpha=0.2)
        assert stats.mean_gap == 20.0
        assert stats.write_rate() == pytest.approx(1 / 20.0)

    def test_ewma_smooths(self):
        stats = KeyWriteStats()
        stats.observe(0.0, alpha=0.5)
        stats.observe(10.0, alpha=0.5)  # gap 10
        stats.observe(30.0, alpha=0.5)  # gap 20 -> 0.5*20 + 0.5*10 = 15
        assert stats.mean_gap == 15.0

    def test_simultaneous_writes_do_not_divide_by_zero(self):
        stats = KeyWriteStats()
        stats.observe(5.0, alpha=0.2)
        stats.observe(5.0, alpha=0.2)
        assert stats.write_rate() is not None
        assert stats.write_rate() > 0


class TestTtlEstimator:
    def test_unknown_key_gets_default(self):
        estimator = TtlEstimator(default_ttl=500.0, max_ttl=1000.0)
        assert estimator.ttl_for("never-written") == 500.0

    def test_single_write_still_default(self):
        estimator = TtlEstimator(default_ttl=500.0, max_ttl=1000.0)
        estimator.observe_write("k", now=0.0)
        assert estimator.ttl_for("k") == 500.0

    def test_formula_matches_poisson_model(self):
        estimator = TtlEstimator(
            target_invalidation_prob=0.3, min_ttl=0.001, max_ttl=10**9
        )
        estimator.observe_write("k", now=0.0)
        estimator.observe_write("k", now=100.0)  # rate = 1/100
        expected = -math.log(1 - 0.3) * 100.0
        assert estimator.ttl_for("k") == pytest.approx(expected)

    def test_hot_keys_get_short_ttls(self):
        estimator = TtlEstimator(min_ttl=0.001, min_worthwhile=0.0001)
        for t in range(10):
            estimator.observe_write("hot", now=float(t))
        for t in range(0, 10_000, 1000):
            estimator.observe_write("cold", now=float(t))
        assert estimator.ttl_for("hot") < estimator.ttl_for("cold")

    def test_clamping(self):
        estimator = TtlEstimator(
            min_ttl=10.0, max_ttl=100.0, default_ttl=10**6, min_worthwhile=0.01
        )
        # default exceeds max for unknown keys? default is used as-is
        # only via raw_estimate; ttl_for clamps it.
        assert estimator.ttl_for("unknown") == 100.0
        estimator.observe_write("fast", now=0.0)
        estimator.observe_write("fast", now=1.0)
        assert estimator.ttl_for("fast") == 10.0

    def test_uncacheable_below_worthwhile(self):
        estimator = TtlEstimator(min_worthwhile=0.5, min_ttl=0.1)
        estimator.observe_write("scorching", now=0.0)
        estimator.observe_write("scorching", now=0.001)
        assert estimator.ttl_for("scorching") == 0.0

    def test_higher_theta_longer_ttl(self):
        lax = TtlEstimator(target_invalidation_prob=0.9, max_ttl=10**9)
        strict = TtlEstimator(target_invalidation_prob=0.1, max_ttl=10**9)
        for estimator in (lax, strict):
            estimator.observe_write("k", now=0.0)
            estimator.observe_write("k", now=60.0)
        assert lax.raw_estimate("k") > strict.raw_estimate("k")

    def test_validation(self):
        with pytest.raises(ValueError):
            TtlEstimator(target_invalidation_prob=0.0)
        with pytest.raises(ValueError):
            TtlEstimator(target_invalidation_prob=1.0)
        with pytest.raises(ValueError):
            TtlEstimator(min_ttl=10.0, max_ttl=1.0)
        with pytest.raises(ValueError):
            TtlEstimator(ewma_alpha=0.0)

    def test_tracked_keys(self):
        estimator = TtlEstimator()
        estimator.observe_write("a", 0.0)
        estimator.observe_write("b", 0.0)
        estimator.observe_write("a", 1.0)
        assert estimator.tracked_keys() == 2
        assert estimator.stats_for("a").writes == 2
        assert estimator.stats_for("ghost") is None

    @given(
        gaps=st.lists(st.floats(0.1, 10_000.0), min_size=2, max_size=30),
        theta=st.floats(0.05, 0.95),
    )
    @settings(max_examples=50)
    def test_ttl_always_within_bounds_or_zero(self, gaps, theta):
        estimator = TtlEstimator(
            target_invalidation_prob=theta, min_ttl=1.0, max_ttl=1000.0
        )
        now = 0.0
        for gap in gaps:
            now += gap
            estimator.observe_write("k", now=now)
        ttl = estimator.ttl_for("k")
        assert ttl == 0.0 or 1.0 <= ttl <= 1000.0
