"""Soak test: every feature enabled at once, nothing breaks.

One run combines adaptive TTLs, predictive prefetching,
stale-while-revalidate, a multi-PoP CDN, a flash sale (write burst +
traffic spike), an origin outage, and a mixed-consent population —
and the invariants that each feature promises individually must all
still hold together.
"""

import random

import pytest

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.workload import (
    CatalogConfig,
    FlashSaleConfig,
    UserPopulationConfig,
    WorkloadConfig,
    generate_catalog,
    generate_users,
    make_flash_sale_trace,
)

DELTA = 45.0
SALE = FlashSaleConfig(start=900.0, end=1500.0, spike_rate=0.5)
OUTAGE = (2000.0, 2200.0)


@pytest.fixture(scope="module")
def soak_result():
    catalog = generate_catalog(
        CatalogConfig(n_products=80), random.Random(0)
    )
    users = generate_users(
        UserPopulationConfig(n_users=40, consent_fraction=0.85),
        random.Random(1),
    )
    workload = WorkloadConfig(
        duration=2700.0, session_rate=0.2, write_rate=0.08
    )
    trace = make_flash_sale_trace(
        catalog, users, workload, SALE, random.Random(2)
    )
    spec = ScenarioSpec(
        scenario=Scenario.SPEED_KIT,
        delta=DELTA,
        adaptive_ttl=True,
        stale_while_revalidate=True,
        prefetch=True,
        pop_names=("edge-1", "edge-2"),
        outage=OUTAGE,
        label="speed-kit-everything",
    )
    runner = SimulationRunner(spec, catalog, users, trace)
    return runner, runner.run()


class TestSoak:
    def test_all_traffic_executed(self, soak_result):
        runner, result = soak_result
        assert result.page_views == len(runner.trace.page_views())

    def test_no_delta_violations(self, soak_result):
        _, result = soak_result
        assert result.reads_checked > 1000
        assert result.delta_violations == 0

    def test_swr_staleness_budget_holds(self, soak_result):
        _, result = soak_result
        # SWR budget = 2Δ, plus purge window and one transit.
        assert result.max_staleness <= 2 * DELTA + 0.080 + 1.0

    def test_outage_caused_bounded_failures(self, soak_result):
        _, result = soak_result
        assert result.failed_responses > 0
        assert result.error_rate() < 0.05

    def test_caching_still_effective_under_stress(self, soak_result):
        _, result = soak_result
        assert result.cache_hit_ratio() > 0.6

    def test_personalization_maintained_for_covered_users(self, soak_result):
        _, result = soak_result
        # Consenting users get segment variants, non-consenting users
        # get origin-personalized (private) renders — both are correct.
        assert result.personalization_rate() == 1.0

    def test_sketch_and_scrubbing_active(self, soak_result):
        _, result = soak_result
        assert result.sketch_fetches > 0
        assert result.requests_scrubbed > 0

    def test_multi_pop_traffic(self, soak_result):
        runner, result = soak_result
        per_pop = {
            name: len(pop.store)
            for name, pop in runner.cdn.pops.items()
        }
        # Both PoPs participated (clients pick nearest by latency).
        assert sum(per_pop.values()) > 0

    def test_deterministic_under_full_feature_load(self, soak_result):
        runner, result = soak_result
        again = SimulationRunner(
            runner.spec, runner.catalog, runner.users, runner.trace
        ).run()
        assert sorted(again.plt.values) == sorted(result.plt.values)
        assert again.origin_requests == result.origin_requests
        assert again.delta_violations == result.delta_violations
