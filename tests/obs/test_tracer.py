"""Unit tests for spans, tracers, and the JSONL exporters."""

import pytest

from repro.obs import (
    NOOP_TRACER,
    NULL_SPAN,
    RecordingTracer,
    SpanContext,
    Tracer,
    dump_jsonl,
    load_jsonl,
    normalize_for_golden,
    span_records,
)
from repro.obs.export import diff_traces


class TestNoopTracer:
    def test_start_returns_the_shared_null_span(self):
        span = NOOP_TRACER.start("sw", 1.0, node="u1", tier="sw")
        assert span is NULL_SPAN
        assert span.context is None

    def test_null_span_mutators_are_inert(self):
        NULL_SPAN.set(verdict="hit")
        NULL_SPAN.event("retry", at=2.0)
        NULL_SPAN.finish(3.0)
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.events == []
        assert NULL_SPAN.duration == 0.0

    def test_disabled_flag(self):
        assert NOOP_TRACER.enabled is False
        assert Tracer().enabled is False
        assert RecordingTracer().enabled is True


class TestRecordingTracer:
    def test_ids_are_deterministic_and_monotonic(self):
        tracer = RecordingTracer()
        a = tracer.start("pageview", 0.0)
        b = tracer.start("request", 0.1, parent=a)
        c = tracer.start("pageview", 0.2)
        assert (a.context.trace_id, a.context.span_id) == (1, 1)
        assert (b.context.trace_id, b.context.span_id) == (1, 2)
        assert (c.context.trace_id, c.context.span_id) == (2, 3)

    def test_parent_accepts_span_or_context(self):
        tracer = RecordingTracer()
        root = tracer.start("pageview", 0.0)
        via_span = tracer.start("a", 0.0, parent=root)
        via_ctx = tracer.start("b", 0.0, parent=root.context)
        assert via_span.parent_id == root.context.span_id
        assert via_ctx.parent_id == root.context.span_id
        assert via_ctx.context.trace_id == root.context.trace_id

    def test_none_parent_starts_a_fresh_trace(self):
        tracer = RecordingTracer()
        first = tracer.start("a", 0.0)
        second = tracer.start("b", 0.0, parent=None)
        assert first.context.trace_id != second.context.trace_id

    def test_finish_and_duration(self):
        tracer = RecordingTracer()
        span = tracer.start("origin", 1.5)
        assert span.duration == 0.0  # unfinished
        tracer.finish(span, 2.25)
        assert span.duration == pytest.approx(0.75)

    def test_attrs_and_events_round_trip_to_record(self):
        tracer = RecordingTracer()
        root = tracer.start("transport", 1.0, node="u1", tier="network")
        span = tracer.start(
            "edge", 1.0, parent=root, node="edge-1", tier="edge"
        )
        span.set(verdict="hit", version=3)
        span.event("not-modified", at=1.2, status=304)
        tracer.finish(span, 1.5)
        record = span.to_record()
        assert record["trace"] == root.context.trace_id
        assert record["span"] == span.context.span_id
        assert record["parent"] == root.context.span_id
        assert record["name"] == "edge"
        assert record["node"] == "edge-1"
        assert record["tier"] == "edge"
        assert record["attrs"] == {"verdict": "hit", "version": 3}
        assert "_parent" not in record["attrs"]
        assert record["events"] == [
            {"name": "not-modified", "at": 1.2, "status": 304}
        ]

    def test_span_context_is_hashable_and_frozen(self):
        ctx = SpanContext(1, 2)
        assert ctx == SpanContext(1, 2)
        assert hash(ctx) == hash(SpanContext(1, 2))
        with pytest.raises(AttributeError):
            ctx.trace_id = 5


class TestExport:
    def _sample(self):
        tracer = RecordingTracer()
        root = tracer.start("pageview", 0.0, node="u1", tier="client")
        child = tracer.start(
            "request", 0.0, parent=root, node="u1", tier="client"
        )
        tracer.finish(child, 0.123456789)
        tracer.finish(root, 0.2)
        return tracer

    def test_dump_and_load_round_trip(self, tmp_path):
        tracer = self._sample()
        path = tmp_path / "trace.jsonl"
        n = dump_jsonl(tracer.spans, path)
        assert n == 2
        loaded = load_jsonl(path)
        assert loaded == span_records(tracer.spans)

    def test_normalize_rounds_floats(self):
        tracer = self._sample()
        normalized = normalize_for_golden(tracer.spans, digits=6)
        assert normalized[1]["end"] == 0.123457

    def test_diff_accepts_timing_jitter_within_tolerance(self):
        tracer = self._sample()
        golden = normalize_for_golden(tracer.spans)
        tracer.spans[1].end += 5e-5
        assert diff_traces(tracer.spans, golden, tolerance=1e-4) == []

    def test_diff_flags_timing_drift(self):
        tracer = self._sample()
        golden = normalize_for_golden(tracer.spans)
        tracer.spans[1].end += 0.5
        problems = diff_traces(tracer.spans, golden, tolerance=1e-4)
        assert problems and "end" in problems[0]

    def test_diff_flags_structural_changes_exactly(self):
        tracer = self._sample()
        golden = normalize_for_golden(tracer.spans)
        tracer.spans[1].attrs["verdict"] = "miss"
        problems = diff_traces(tracer.spans, golden)
        assert any("verdict" in p for p in problems)

    def test_diff_flags_span_count_mismatch(self):
        tracer = self._sample()
        golden = normalize_for_golden(tracer.spans)
        problems = diff_traces(tracer.spans[:1], golden)
        assert any("span count" in p for p in problems)
