"""Tests for the obs metrics registry."""

import pytest

from repro.obs import MetricsRegistry, QuantileSketch
from repro.sim.metrics import MetricRegistry


class TestMetricsRegistry:
    def test_is_a_metric_registry(self):
        registry = MetricsRegistry()
        assert isinstance(registry, MetricRegistry)
        registry.counter("serve.layer.edge").inc(3)
        assert registry.counter("serve.layer.edge").value == 3
        registry.histogram("plt.all").observe(0.5)
        assert registry.histogram("plt.all").count == 1

    def test_sketch_create_or_get(self):
        registry = MetricsRegistry()
        sketch = registry.sketch("tier.plt.edge")
        assert isinstance(sketch, QuantileSketch)
        assert registry.sketch("tier.plt.edge") is sketch
        sketch.observe(0.25)
        assert registry.sketch("tier.plt.edge").count == 1

    def test_sketch_names_sorted(self):
        registry = MetricsRegistry()
        registry.sketch("b")
        registry.sketch("a")
        assert registry.sketch_names() == ["a", "b"]

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.counter("serve.layer.edge").inc(2)
        registry.counter("serve.layer.origin").inc(5)
        registry.counter("other").inc()
        assert registry.counters_with_prefix("serve.layer.") == {
            "edge": 2,
            "origin": 5,
        }

    def test_snapshot_includes_sketch_summaries(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.sketch("tier.plt.origin").observe_many([0.1, 0.2, 0.3])
        snapshot = registry.snapshot()
        assert snapshot["c"] == 1
        assert snapshot["tier.plt.origin"]["count"] == 3
        assert snapshot["tier.plt.origin"]["p50"] == pytest.approx(
            0.2, rel=0.01
        )
