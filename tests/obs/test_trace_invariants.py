"""Trace-derived invariants: attribution sums and the coherence bridge.

The strongest completeness check a trace can pass: rebuild the
Δ-atomicity checker's read log *purely from exported span records* and
re-run the coherence verdict — it must reproduce the live run's
zero-violation outcome, read counts, and staleness numbers. Plus the
per-tier latency attribution must sum to each page view's PLT.
"""

import pytest

from repro.coherence import DeltaAtomicityChecker, version_regressions
from repro.http import Headers, Response, Status, URL
from repro.obs import (
    pageview_attributions,
    reads_from_trace,
    tier_breakdown,
)

from tests.obs.conftest import TRACE_PROFILES, traced_runner


@pytest.fixture(params=TRACE_PROFILES)
def runner(request):
    return traced_runner(request.param)


class TestTierAttribution:
    def test_each_pageview_attribution_sums_to_its_plt(self, runner):
        attributions = pageview_attributions(runner.result.trace_records)
        assert len(attributions) == runner.result.page_views
        for record, attribution in attributions:
            plt = record["attrs"]["plt"]
            assert sum(attribution.values()) == pytest.approx(
                plt, abs=1e-9
            ), f"pageview span {record['span']}"

    def test_breakdown_totals_match_result(self, runner):
        breakdown = tier_breakdown(runner.result.trace_records)
        assert breakdown == runner.result.tier_breakdown
        assert sum(breakdown.values()) == pytest.approx(
            sum(runner.result.plt.values), abs=1e-6
        )

    def test_tier_sketches_are_populated(self, runner):
        names = runner.metrics.sketch_names()
        assert any(name.startswith("tier.plt.") for name in names)
        # Every page view attributes time to its own (client) tier;
        # the other tiers appear only on the loads that touched them.
        assert (
            runner.metrics.sketch("tier.plt.client").count
            == runner.result.page_views
        )
        for name in names:
            if name.startswith("tier.plt."):
                count = runner.metrics.sketch(name).count
                assert 0 < count <= runner.result.page_views, name


def rebuild_checkers(runner):
    """Feed the trace-rebuilt read log through fresh checkers."""
    reads = reads_from_trace(runner.result.trace_records)
    covered = DeltaAtomicityChecker(
        runner.server, delta=runner.checker.delta
    )
    uncovered = DeltaAtomicityChecker(runner.server, delta=float("inf"))
    for read in sorted(reads, key=lambda r: r["read_at"]):
        # Span records store the display form "origin/path?query".
        origin, _, rest = read["url"].partition("/")
        response = Response(
            status=Status.OK,
            headers=Headers({"X-Version-Key": read["version_key"]}),
            url=URL.parse("/" + rest, origin=origin),
            version=read["version"],
        )
        target = covered if read["covered"] else uncovered
        target.record_read(
            response,
            read["read_at"],
            client=read["client"],
            issued_at=read.get("issued_at"),
        )
    return covered, uncovered


def signature(records):
    return sorted(
        (
            round(record.read_at, 9),
            record.resource_key,
            record.version,
            record.client,
        )
        for record in records
    )


class TestCoherenceBridge:
    def test_rebuilt_log_matches_live_checker_reads(self, runner):
        covered, uncovered = rebuild_checkers(runner)
        assert (
            covered.read_count + uncovered.read_count
            == runner.result.reads_checked
        )
        assert signature(covered.records) == signature(
            runner.checker.records
        )
        assert signature(uncovered.records) == signature(
            runner.baseline_checker.records
        )

    def test_rebuilt_log_reproduces_the_verdict(self, runner):
        covered, _ = rebuild_checkers(runner)
        assert covered.violation_count == runner.result.delta_violations
        assert covered.violation_count == 0
        covered.assert_delta_atomic()
        assert covered.max_staleness() == pytest.approx(
            runner.result.max_staleness, abs=1e-9
        )

    def test_rebuilt_reads_are_monotonic_per_client_and_key(self, runner):
        # Session monotonic reads, concurrency-aware: under overload a
        # user's overlapping page loads may legally complete out of
        # issue order; only a read *issued after* a newer-version read
        # completed may never regress.
        covered, uncovered = rebuild_checkers(runner)
        for checker in (covered, uncovered):
            assert version_regressions(checker.records) == []

    def test_bridge_is_not_vacuous(self, runner):
        assert runner.result.reads_checked > 100
        assert (
            runner.metrics.counter("invalidation.processed").value > 0
        )
