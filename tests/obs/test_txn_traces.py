"""Golden traces and trace-derived verdicts for transactions.

Every rung of the consistency ladder gets a committed golden trace —
the ``txn`` span tree (reads, refetches, validation round trips) of a
fixed-seed replay must match byte-for-byte modulo timing tolerance.
Refresh with::

    pytest tests/obs/test_txn_traces.py --update-goldens

Beyond the goldens, the exported spans must be *sufficient*: a
consistency checker rebuilt purely from ``txns_from_trace`` output
reaches the same fractured-read / serialization / silent-downgrade
verdicts as the live one.
"""

import random
from pathlib import Path

import pytest

from repro.coherence.txn import TxnConsistencyChecker
from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.obs import dump_jsonl, load_jsonl, normalize_for_golden
from repro.obs.analysis import txns_from_trace
from repro.obs.export import diff_traces
from repro.txn import ConsistencyLevel
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)

pytestmark = pytest.mark.txn

GOLDEN_DIR = Path(__file__).parent / "goldens"

SEED = 5

LEVELS = ("delta", "snapshot", "serializable")

#: The traced regimes: each ladder rung fault-free (the goldens), plus
#: a chaotic serializable run exercising the degradation paths.
REGIMES = LEVELS + ("serializable-chaos",)

_RUNNERS = {}


def _txn_workload(seed=SEED):
    catalog = generate_catalog(
        CatalogConfig(n_products=15), random.Random(seed)
    )
    users = generate_users(
        UserPopulationConfig(n_users=6, consent_fraction=1.0),
        random.Random(seed + 1),
    )
    config = WorkloadConfig(
        duration=240.0,
        session_rate=0.06,
        mean_session_length=3.0,
        think_time_mean=6.0,
        write_rate=0.1,
        txn_mix=0.4,
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(seed + 2)
    )
    return catalog, users, trace


def _spec_for(regime, seed=SEED):
    kwargs = {}
    level = regime
    if regime == "serializable-chaos":
        from repro.faults import PROFILES, RetryPolicy

        level = "serializable"
        kwargs = dict(
            fault_profile=PROFILES["chaos"],
            stale_if_error=60.0,
            retry=RetryPolicy(),
        )
    return ScenarioSpec(
        scenario=Scenario.SPEED_KIT,
        delta=30.0,
        seed=seed,
        trace_requests=True,
        consistency=level,
        **kwargs,
    )


def txn_traced_runner(regime, seed=SEED):
    """The (cached) live runner of one traced transaction replay."""
    cached = _RUNNERS.get((regime, seed))
    if cached is None:
        catalog, users, trace = _txn_workload(seed)
        cached = SimulationRunner(
            _spec_for(regime, seed), catalog, users, trace
        )
        cached.run()
        _RUNNERS[(regime, seed)] = cached
    return cached


@pytest.mark.parametrize("level", LEVELS)
def test_txn_trace_matches_golden(level, request):
    runner = txn_traced_runner(level)
    records = normalize_for_golden(runner.result.trace_records)
    path = GOLDEN_DIR / f"txn-{level}.jsonl"
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        dump_jsonl(records, path)
        pytest.skip(f"updated golden {path.name}")
    assert path.exists(), (
        f"missing golden {path}; generate it with --update-goldens"
    )
    golden = load_jsonl(path)
    problems = diff_traces(records, golden, tolerance=1e-4)
    assert problems == [], "trace deviates from golden:\n" + "\n".join(
        problems
    )


@pytest.mark.parametrize("level", LEVELS)
def test_txn_trace_is_deterministic_per_seed(level):
    first = txn_traced_runner(level).result.trace_records
    catalog, users, trace = _txn_workload()
    rerun = SimulationRunner(_spec_for(level), catalog, users, trace)
    rerun.run()
    assert rerun.result.trace_records == first


@pytest.mark.parametrize("level", LEVELS)
def test_txn_spans_cover_the_protocol(level):
    """Each rung's trace shows the machinery that rung engages."""
    records = txn_traced_runner(level).result.trace_records
    names = {record["name"] for record in records}
    assert "txn" in names
    assert "txn-read" in names
    # Validation RPCs ride the direct origin exchange: they surface as
    # ``origin`` spans parented straight under the ``txn`` span (reads
    # and refetches interpose their own child spans).
    txn_spans = {
        record["span"] for record in records if record["name"] == "txn"
    }
    validations = [
        record
        for record in records
        if record["name"] == "origin"
        and record.get("parent") in txn_spans
    ]
    if level == "serializable":
        assert validations, "no validation RPC spans in the trace"
    else:
        assert validations == []


def test_txn_reads_parent_under_their_transaction():
    """Every txn-read / txn-refetch span links to a txn span."""
    records = txn_traced_runner("snapshot").result.trace_records
    txn_spans = {
        record["span"]
        for record in records
        if record["name"] == "txn"
    }
    children = [
        record
        for record in records
        if record["name"] in ("txn-read", "txn-refetch")
    ]
    assert children
    assert all(record["parent"] in txn_spans for record in children)


@pytest.mark.parametrize("regime", REGIMES)
def test_rebuilt_checker_matches_live_verdict(regime):
    """The exported spans are sufficient: a checker rebuilt purely
    from the trace reproduces the live fractured-read, serialization,
    and silent-downgrade verdicts."""
    runner = txn_traced_runner(regime)
    rebuilt = TxnConsistencyChecker(runner.server)
    for txn in txns_from_trace(runner.result.trace_records):
        rebuilt.record_txn(
            requested=ConsistencyLevel.parse(txn["requested"]),
            achieved=ConsistencyLevel.parse(txn["achieved"]),
            degraded=txn["degraded"],
            reads=txn["reads"],
            validated_at=txn["validated_at"],
            finished_at=txn["finished_at"],
            client=txn["client"],
        )
    assert rebuilt.txn_count == runner.result.txns > 0
    assert rebuilt.signature() == runner.txn_checker.signature()
    rebuilt.assert_txn_consistent()


def test_chaos_trace_shows_marked_degradations():
    """Faults degrade some transactions; the trace says so — the
    ``degraded`` attribute and the achieved level are exported, and
    no span shows an unmarked downgrade."""
    runner = txn_traced_runner("serializable-chaos")
    assert runner._faults.total_downtime("origin") > 0
    txns = txns_from_trace(runner.result.trace_records)
    for txn in txns:
        achieved = ConsistencyLevel.parse(txn["achieved"])
        requested = ConsistencyLevel.parse(txn["requested"])
        if achieved < requested:
            assert txn["degraded"]
    degraded_in_trace = sum(1 for txn in txns if txn["degraded"])
    assert degraded_in_trace == runner.result.txn_degraded


def test_trace_abort_accounting_matches_result():
    runner = txn_traced_runner("serializable")
    txns = txns_from_trace(runner.result.trace_records)
    assert sum(txn["aborts"] for txn in txns) == runner.result.txn_aborts
