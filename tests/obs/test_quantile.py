"""Property tests for the streaming quantile sketch.

Two properties from the issue spec, checked over seeded random data:

1. **Rank accuracy** — for every queried quantile, the returned value's
   rank in the sorted reference is within 1% of the target rank.
2. **Exact merge** — ``merge(a, b)`` equals ingesting the concatenation
   of both streams, in any order.
"""

import math
import random

import pytest

from repro.obs import QuantileSketch

QS = [0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0]


def datasets(seed):
    rng = random.Random(seed)
    n = 5000
    return {
        "uniform": [rng.uniform(0.001, 10.0) for _ in range(n)],
        "lognormal": [rng.lognormvariate(0.0, 2.0) for _ in range(n)],
        "latency-like": [
            abs(rng.gauss(0.05, 0.02)) + rng.expovariate(20.0)
            for _ in range(n)
        ],
        "heavy-ties": [
            rng.choice([0.0, 0.01, 0.05, 0.25, 1.0]) for _ in range(n)
        ],
        "mixed-sign": [rng.gauss(0.0, 5.0) for _ in range(n)],
        "tiny": [rng.uniform(0.0, 1.0) for _ in range(7)],
    }


def rank_error(values, value, q):
    """Distance (in ranks) from the target rank to the returned
    value's feasible rank interval in the sorted reference."""
    ordered = sorted(values)
    n = len(ordered)
    target = max(1, math.ceil(q * n))
    # Feasible ranks of `value`: (#strictly-less, #less-or-equal].
    lo = sum(1 for v in ordered if v < value) + 1
    hi = sum(1 for v in ordered if v <= value)
    if hi < lo:  # value not present: between ranks lo-1 and lo
        lo = hi = lo - 0.5
    if lo <= target <= hi:
        return 0.0
    return min(abs(target - lo), abs(target - hi))


class TestRankAccuracy:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rank_error_below_one_percent(self, seed):
        for name, values in datasets(seed).items():
            sketch = QuantileSketch()
            sketch.observe_many(values)
            budget = max(1.0, 0.01 * len(values))
            for q in QS:
                error = rank_error(values, sketch.quantile(q), q)
                assert error <= budget, (
                    f"{name} q={q}: rank error {error} > {budget}"
                )

    @pytest.mark.parametrize("seed", [1, 2])
    def test_relative_value_error_is_bounded(self, seed):
        """On tie-free data the returned value is within the sketch's
        relative-accuracy band of some sample near the target rank."""
        rng = random.Random(seed)
        values = sorted(rng.uniform(1.0, 100.0) for _ in range(2000))
        sketch = QuantileSketch(relative_accuracy=0.0025)
        sketch.observe_many(values)
        for q in QS:
            got = sketch.quantile(q)
            target = max(1, math.ceil(q * len(values)))
            window = values[
                max(0, target - 25) : min(len(values), target + 25)
            ]
            assert any(
                abs(got - ref) <= 0.006 * abs(ref) for ref in window
            ), f"q={q}: {got} not near ranks around {target}"

    def test_exact_on_ties(self):
        sketch = QuantileSketch()
        sketch.observe_many([2.5] * 100)
        for q in QS:
            assert sketch.quantile(q) == 2.5

    def test_extremes_are_exact(self):
        rng = random.Random(9)
        values = [rng.lognormvariate(0, 1) for _ in range(500)]
        sketch = QuantileSketch()
        sketch.observe_many(values)
        assert sketch.quantile(0.0) == pytest.approx(min(values), rel=0.006)
        assert sketch.quantile(1.0) == pytest.approx(max(values), rel=0.006)
        assert sketch.min == min(values)
        assert sketch.max == max(values)


class TestExactMerge:
    @pytest.mark.parametrize("seed", [4, 5, 6])
    def test_merge_equals_concatenated_ingest(self, seed):
        rng = random.Random(seed)
        a = [rng.lognormvariate(0, 1.5) for _ in range(1200)]
        b = [rng.gauss(0, 3.0) for _ in range(800)] + [0.0] * 50
        merged = QuantileSketch()
        merged.observe_many(a)
        other = QuantileSketch()
        other.observe_many(b)
        merged.merge(other)
        together = QuantileSketch()
        together.observe_many(a + b)
        assert merged.count == together.count
        assert merged.sum == pytest.approx(together.sum)
        assert merged.min == together.min
        assert merged.max == together.max
        for q in QS:
            assert merged.quantile(q) == together.quantile(q), f"q={q}"

    def test_merge_is_order_independent(self):
        rng = random.Random(7)
        a = [rng.uniform(0, 10) for _ in range(500)]
        b = [rng.uniform(5, 50) for _ in range(500)]
        ab = QuantileSketch()
        ab.observe_many(a)
        other_b = QuantileSketch()
        other_b.observe_many(b)
        ab.merge(other_b)
        ba = QuantileSketch()
        ba.observe_many(b)
        other_a = QuantileSketch()
        other_a.observe_many(a)
        ba.merge(other_a)
        for q in QS:
            assert ab.quantile(q) == ba.quantile(q)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.0025).merge(QuantileSketch(0.01))

    def test_merge_rejects_non_sketch(self):
        with pytest.raises(TypeError):
            QuantileSketch().merge([1, 2, 3])

    def test_copy_is_independent(self):
        sketch = QuantileSketch()
        sketch.observe_many([1.0, 2.0, 3.0])
        clone = sketch.copy()
        clone.observe(100.0)
        assert sketch.count == 3
        assert clone.count == 4
        assert sketch.max == 3.0


class TestEdgeCases:
    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(0.5)

    def test_out_of_range_quantile_raises(self):
        sketch = QuantileSketch()
        sketch.observe(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_invalid_accuracy_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)

    def test_percentile_matches_quantile(self):
        sketch = QuantileSketch()
        sketch.observe_many(range(1, 101))
        assert sketch.percentile(95) == sketch.quantile(0.95)

    def test_summary_shape(self):
        sketch = QuantileSketch()
        assert sketch.summary() == {"count": 0}
        sketch.observe_many([1.0, 2.0, 3.0, 4.0])
        summary = sketch.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_zeros_and_negatives(self):
        sketch = QuantileSketch()
        sketch.observe_many([-2.0, -1.0, 0.0, 0.0, 1.0, 2.0])
        assert sketch.quantile(0.0) == pytest.approx(-2.0, rel=0.006)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(2.0, rel=0.006)
