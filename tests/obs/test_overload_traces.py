"""Overload spans: coverage, shape, and the offline goodput rebuild.

The strongest completeness check for the new span kinds: rebuild the
overload ledger — goodput, shed and queue totals, per-class shed
counts — *purely from exported span records* and it must equal the
live run's ``RunResult`` numbers. Golden comparison itself rides the
shared ``speed-kit-overload.jsonl`` golden in
:mod:`tests.obs.test_golden_traces`.
"""

import pytest

from repro.obs import overload_accounting

from tests.obs.conftest import traced_runner

pytestmark = pytest.mark.overload


@pytest.fixture(scope="module")
def runner():
    return traced_runner("overload")


@pytest.fixture(scope="module")
def records(runner):
    return runner.result.trace_records


def spans_named(records, name):
    return [record for record in records if record.get("name") == name]


class TestSpanCoverage:
    def test_every_overload_span_kind_is_recorded(self, records):
        names = {record["name"] for record in records}
        for expected in (
            "overload.queue",
            "overload.shed",
            "overload.scale",
        ):
            assert expected in names, f"no {expected!r} span recorded"

    def test_queue_spans_carry_waits_and_classes(self, records):
        for span in spans_named(records, "overload.queue"):
            attrs = span["attrs"]
            assert span["tier"] == "overload"
            assert attrs["cls"] in ("control", "static", "personalized")
            assert attrs["n"] >= 1
            assert attrs["depth"] >= 1
            assert span["end"] >= span["start"]

    def test_shed_spans_are_instantaneous_and_classified(self, records):
        spans = spans_named(records, "overload.shed")
        assert spans
        for span in spans:
            assert span["end"] == span["start"]
            assert span["attrs"]["cls"] != "control"
            assert span["attrs"]["n"] >= 1

    def test_scale_spans_form_a_coherent_capacity_walk(self, records):
        spans = spans_named(records, "overload.scale")
        assert spans
        walks = {}
        for span in sorted(spans, key=lambda s: s["start"]):
            attrs = span["attrs"]
            assert attrs["direction"] in ("up", "down")
            if attrs["direction"] == "up":
                assert attrs["to_capacity"] > attrs["from_capacity"]
            else:
                assert attrs["to_capacity"] < attrs["from_capacity"]
            node = span["node"]
            previous = walks.get(node)
            if previous is not None:
                assert attrs["from_capacity"] == previous, (
                    f"{node} capacity walk broken: "
                    f"{previous} -> {attrs['from_capacity']}"
                )
            walks[node] = attrs["to_capacity"]

    def test_queue_spans_parent_into_request_traces(self, records):
        by_span = {record["span"]: record for record in records}
        parented = [
            span
            for span in spans_named(records, "overload.queue")
            if span.get("parent") is not None
        ]
        assert parented
        for span in parented:
            assert span["parent"] in by_span


class TestOfflineRebuild:
    def test_accounting_rebuilds_the_live_ledger(self, runner, records):
        rebuilt = overload_accounting(
            records, slo=runner.spec.overload_profile.slo
        )
        result = runner.result
        assert rebuilt["page_views"] == result.page_views
        assert rebuilt["goodput_pages"] == result.goodput_pages
        assert rebuilt["shed_requests"] == result.shed_requests
        assert rebuilt["queued_requests"] == result.queued_requests
        assert rebuilt["shed_by_class"] == result.shed_by_class

    def test_rebuild_without_slo_reports_no_goodput(self, records):
        rebuilt = overload_accounting(records, slo=None)
        assert rebuilt["goodput_pages"] == 0
        assert rebuilt["shed_requests"] > 0

    def test_ledger_is_not_vacuous(self, runner):
        result = runner.result
        assert result.shed_requests > 0
        assert result.queued_requests > 0
        assert result.goodput_pages > 0
        assert result.scale_ups > 0
