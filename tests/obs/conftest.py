"""Shared traced runs for the observability test suite.

One small deterministic workload replayed through the full Speed Kit
stack with tracing on, under the perfect world ("none") and a chaotic
fault regime ("chaos").  Runs are cached per profile so the golden,
invariant, and coherence-bridge tests all analyze the same traces.
"""

import random

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)

#: Regimes the traced regression runs cover: the perfect world, a
#: chaotic fault profile, and a saturated overload control plane.
TRACE_PROFILES = ("none", "chaos", "overload")

SEED = 5

_RUNNERS = {}


def small_workload(seed=SEED):
    catalog = generate_catalog(
        CatalogConfig(n_products=15), random.Random(seed)
    )
    users = generate_users(
        UserPopulationConfig(n_users=6, consent_fraction=1.0),
        random.Random(seed + 1),
    )
    config = WorkloadConfig(
        duration=240.0,
        session_rate=0.06,
        mean_session_length=3.0,
        think_time_mean=6.0,
        write_rate=0.06,
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(seed + 2)
    )
    return catalog, users, trace


def spec_for(profile, seed=SEED):
    kwargs = {}
    if profile == "chaos":
        from repro.faults import PROFILES, RetryPolicy

        kwargs = dict(
            fault_profile=PROFILES["chaos"],
            stale_if_error=60.0,
            retry=RetryPolicy(),
        )
    elif profile == "overload":
        from repro.overload import OverloadProfile

        # Both the origin and the (single-slot) PoP are governed and
        # the autoscaler is on, so the trace records every overload
        # span kind: queue waits, sheds, and scale decisions.
        kwargs = dict(
            overload_profile=OverloadProfile(
                name="golden-overload",
                origin_capacity=2,
                origin_service_time=0.25,
                pop_capacity=1,
                pop_service_time=0.25,
                queue_limit=16,
                personalized_queue_limit=4,
                slo=2.0,
            ),
            load_multiplier=6.0,
            admission=True,
            autoscale=True,
        )
    return ScenarioSpec(
        scenario=Scenario.SPEED_KIT,
        delta=30.0,
        seed=seed,
        trace_requests=True,
        **kwargs,
    )


def traced_runner(profile, seed=SEED):
    """The (cached) live runner of one traced profile replay."""
    cached = _RUNNERS.get((profile, seed))
    if cached is None:
        catalog, users, trace = small_workload(seed)
        cached = SimulationRunner(
            spec_for(profile, seed), catalog, users, trace
        )
        cached.run()
        _RUNNERS[(profile, seed)] = cached
    return cached
