"""Degraded servings must not inflate the cache hit ratio.

Regression for a double-counting bug: the service worker's graceful-
degradation path counted every stale-if-error/offline serving as a
fresh cache "hit", so outages *raised* the reported hit ratio. Now
degraded servings are tallied separately (``served_degraded_by_layer``,
``serve.degraded.*`` counters) and excluded from the fresh-hit
numerator.
"""

from repro.harness import RunResult
from repro.obs import MetricsRegistry


def result_with(served, degraded):
    registry = MetricsRegistry()
    result = RunResult(
        scenario_name="test",
        metrics=registry,
        plt=registry.histogram("plt.all"),
    )
    result.served_by_layer = dict(served)
    result.served_degraded_by_layer = dict(degraded)
    return result


class TestHitRatioExcludesDegraded:
    def test_degraded_servings_are_not_hits(self):
        result = result_with(
            {"sw": 60, "edge": 20, "origin": 20}, {"sw": 10}
        )
        # 100 total, 80 avoided the origin, but 10 of those were
        # degraded fallbacks: only 70 are verified-fresh hits.
        assert result.cache_hit_ratio() == 0.70
        assert result.degraded_serve_ratio() == 0.10

    def test_no_degraded_keeps_historical_ratio(self):
        result = result_with({"sw": 60, "origin": 40}, {})
        assert result.cache_hit_ratio() == 0.60
        assert result.degraded_serve_ratio() == 0.0

    def test_all_degraded_run_has_zero_hit_ratio(self):
        result = result_with({"sw": 10}, {"sw": 10})
        assert result.cache_hit_ratio() == 0.0
        assert result.degraded_serve_ratio() == 1.0

    def test_to_dict_reports_both_ratios(self):
        result = result_with({"sw": 8, "origin": 2}, {"sw": 3})
        record = result.to_dict()
        assert record["cache_hit_ratio"] == 0.5
        assert record["degraded_serve_ratio"] == 0.3
        assert record["served_degraded_by_layer"] == {"sw": 3}
