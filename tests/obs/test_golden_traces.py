"""Golden-trace regression tests.

A fixed-seed workload is replayed with tracing on and the exported
span records are compared against committed goldens: hop sequence,
parent links, nodes, tiers, cache verdicts, versions, and event names
must match exactly; timings within a tolerance.  Refresh with::

    pytest tests/obs/test_golden_traces.py --update-goldens
"""

from pathlib import Path

import pytest

from repro.obs import dump_jsonl, load_jsonl, normalize_for_golden
from repro.obs.export import diff_traces

from tests.obs.conftest import TRACE_PROFILES, traced_runner

GOLDEN_DIR = Path(__file__).parent / "goldens"


@pytest.mark.parametrize("profile", TRACE_PROFILES)
def test_trace_matches_golden(profile, request):
    runner = traced_runner(profile)
    records = normalize_for_golden(runner.result.trace_records)
    path = GOLDEN_DIR / f"speed-kit-{profile}.jsonl"
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        dump_jsonl(records, path)
        pytest.skip(f"updated golden {path.name}")
    assert path.exists(), (
        f"missing golden {path}; generate it with --update-goldens"
    )
    golden = load_jsonl(path)
    problems = diff_traces(records, golden, tolerance=1e-4)
    assert problems == [], "trace deviates from golden:\n" + "\n".join(
        problems
    )


@pytest.mark.parametrize("profile", TRACE_PROFILES)
def test_trace_is_deterministic_per_seed(profile):
    """Two replays of the same seed produce identical span records."""
    first = traced_runner(profile).result.trace_records
    from tests.obs.conftest import SimulationRunner, small_workload, spec_for

    catalog, users, trace = small_workload()
    rerun = SimulationRunner(spec_for(profile), catalog, users, trace)
    rerun.run()
    assert rerun.result.trace_records == first


def test_golden_covers_the_full_request_path():
    """The committed trace exercises every instrumented hop type."""
    runner = traced_runner("none")
    names = {record["name"] for record in runner.result.trace_records}
    for expected in (
        "pageview",
        "request",
        "sw",
        "sketch-fetch",
        "transport",
        "edge",
        "origin",
        "invalidation",
        "purge",
    ):
        assert expected in names, f"no {expected!r} span recorded"


def test_chaos_trace_records_fault_events():
    runner = traced_runner("chaos")
    events = {
        event["name"]
        for record in runner.result.trace_records
        for event in record.get("events", ())
    }
    assert events & {
        "retry",
        "lost-request",
        "lost-response",
        "breaker-open",
        "edge-down",
    }, f"no fault events in chaos trace: {sorted(events)}"


def test_verdicts_and_versions_are_recorded():
    runner = traced_runner("none")
    verdicts = {
        record["attrs"].get("verdict")
        for record in runner.result.trace_records
        if record["name"] == "sw"
    }
    assert "hit" in verdicts
    assert verdicts & {"fetch", "revalidate"}
    versions = [
        record["attrs"].get("version")
        for record in runner.result.trace_records
        if record["name"] == "edge"
        and record["attrs"].get("verdict") == "fill"
    ]
    assert versions and all(v is not None for v in versions)
