"""Tests for the per-PoP circuit breaker state machine."""

import pytest

from repro.faults import CircuitBreaker


class TestClosed:
    def test_allows_by_default(self):
        breaker = CircuitBreaker()
        assert breaker.allow("edge", 0.0)
        assert not breaker.is_open("edge", 0.0)

    def test_isolated_failures_do_not_trip(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure("edge", 0.0)
        breaker.record_failure("edge", 1.0)
        breaker.record_success("edge")
        breaker.record_failure("edge", 2.0)
        breaker.record_failure("edge", 3.0)
        assert breaker.allow("edge", 4.0)
        assert breaker.trips == 0


class TestOpen:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=30.0)
        for t in range(3):
            breaker.record_failure("edge", float(t))
        assert breaker.is_open("edge", 3.0)
        assert not breaker.allow("edge", 3.0)
        assert breaker.trips == 1

    def test_targets_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("edge-a", 0.0)
        assert not breaker.allow("edge-a", 0.0)
        assert breaker.allow("edge-b", 0.0)

    def test_stays_open_through_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        breaker.record_failure("edge", 0.0)
        assert not breaker.allow("edge", 29.9)


class TestHalfOpen:
    def test_one_probe_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        breaker.record_failure("edge", 0.0)
        assert breaker.allow("edge", 31.0)  # the probe
        assert not breaker.allow("edge", 31.0)  # only one at a time

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        breaker.record_failure("edge", 0.0)
        assert breaker.allow("edge", 31.0)
        breaker.record_success("edge")
        assert breaker.allow("edge", 31.0)
        assert not breaker.is_open("edge", 31.0)

    def test_probe_failure_rearms_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        breaker.record_failure("edge", 0.0)
        assert breaker.allow("edge", 31.0)
        breaker.record_failure("edge", 31.0)
        assert not breaker.allow("edge", 60.0)  # 31 + 30 > 60
        assert breaker.allow("edge", 61.5)  # next probe


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_cooldown_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)

    def test_trip_metrics(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("edge", 0.0)
        assert breaker.metrics.counter("breaker.trips").value == 1
        assert breaker.metrics.counter("breaker.edge.opened").value == 1
