"""Shared fixtures: a small full stack for transport fault tests."""

import random

import pytest

from repro.browser import Transport
from repro.cdn import Cdn
from repro.origin import (
    OriginServer,
    ResourceKind,
    ResourceSpec,
    Site,
    StaticTtlPolicy,
)
from repro.sim import Environment
from repro.sim.metrics import MetricRegistry
from repro.simnet.topology import two_tier

CLIENT_EDGE = 0.01
EDGE_ORIGIN = 0.04
CLIENT_ORIGIN = 0.05


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def site():
    site = Site()
    site.add_route(
        ResourceSpec(
            name="page",
            pattern="/page/{id}",
            kind=ResourceKind.PAGE,
            doc_keys=lambda p: [f"pages/{p['id']}"],
            size_bytes=20_000,
        )
    )
    for i in range(5):
        site.store.put("pages", str(i), {"title": f"page {i}"})
    return site


@pytest.fixture
def server(site):
    return OriginServer(site, ttl_policy=StaticTtlPolicy())


@pytest.fixture
def topology():
    return two_tier(
        client_edge_delay=CLIENT_EDGE,
        edge_origin_delay=EDGE_ORIGIN,
        client_origin_delay=CLIENT_ORIGIN,
    )


@pytest.fixture
def cdn():
    return Cdn(["edge"])


@pytest.fixture
def metrics():
    return MetricRegistry()


@pytest.fixture
def make_transport(env, topology, server, metrics):
    """Build a Transport with fault knobs; metrics are pre-wired."""

    def build(**kwargs):
        kwargs.setdefault("metrics", metrics)
        return Transport(env, topology, server, random.Random(0), **kwargs)

    return build


def run_fetch(env, generator):
    """Drive a fetch sub-process to completion; return its response."""
    process = env.process(generator)
    env.run()
    return process.value
