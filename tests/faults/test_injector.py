"""Tests for the seeded fault injector: windows, determinism, coins."""

from repro.faults import FaultProfile


class TestOutageWindows:
    def test_origin_downtime_matches_fraction(self):
        profile = FaultProfile(
            origin_outage_fraction=0.10, origin_outage_count=2
        )
        injector = profile.build(duration=3600.0, seed=7)
        downtime = injector.total_downtime("origin")
        assert abs(downtime - 360.0) < 1.0

    def test_windows_land_in_the_middle_of_the_run(self):
        profile = FaultProfile(origin_outage_fraction=0.10)
        injector = profile.build(duration=1000.0, seed=3)
        assert not injector.is_down("origin", 0.0)
        assert not injector.is_down("origin", 50.0)  # warm-up protected
        assert not injector.is_down("origin", 999.0)  # recovery protected

    def test_same_seed_same_schedule(self):
        profile = FaultProfile(
            origin_outage_fraction=0.10, origin_outage_count=2
        )
        a = profile.build(duration=3600.0, seed=5)
        b = profile.build(duration=3600.0, seed=5)
        assert a.outages == b.outages

    def test_different_seed_different_schedule(self):
        profile = FaultProfile(origin_outage_fraction=0.10)
        a = profile.build(duration=3600.0, seed=1)
        b = profile.build(duration=3600.0, seed=2)
        assert a.outages != b.outages

    def test_pop_outages_hit_only_affected_pops(self):
        profile = FaultProfile(pop_outage_fraction=0.15, pops_affected=1)
        injector = profile.build(
            duration=3600.0, pop_names=["edge-b", "edge-a"], seed=0
        )
        # Affected set is sorted-prefix, so "edge-a" fails, "edge-b" not.
        assert injector.total_downtime("edge-a") > 0
        assert injector.total_downtime("edge-b") == 0
        assert injector.total_downtime("origin") == 0

    def test_degenerate_fraction_yields_contiguous_window(self):
        profile = FaultProfile(
            origin_outage_fraction=0.9, origin_outage_count=3
        )
        injector = profile.build(duration=100.0, seed=0)
        # Window capped to the usable middle band, still one block.
        assert len(injector.outages["origin"]) == 1


class TestDecisions:
    def test_should_fail_inside_outage(self):
        profile = FaultProfile(origin_outage_fraction=0.5)
        injector = profile.build(duration=100.0, seed=0)
        window = injector.outages["origin"][0]
        assert injector.should_fail("origin", window.start + 0.01)

    def test_brownout_rate_roughly_respected(self):
        profile = FaultProfile(origin_brownout_rate=0.2)
        injector = profile.build(duration=100.0, seed=0)
        failures = sum(
            injector.should_fail("origin", 1.0) for _ in range(2000)
        )
        assert 300 < failures < 500

    def test_loss_and_spike_rates_roughly_respected(self):
        profile = FaultProfile(
            link_loss_rate=0.1,
            latency_spike_rate=0.1,
            latency_spike_factor=4.0,
        )
        injector = profile.build(duration=100.0, seed=0)
        losses = sum(
            injector.loses_message("a", "b") for _ in range(2000)
        )
        spikes = sum(
            injector.latency_factor("a", "b") > 1.0 for _ in range(2000)
        )
        assert 120 < losses < 280
        assert 120 < spikes < 280

    def test_inactive_profile_never_decides_against_you(self):
        injector = FaultProfile().build(duration=100.0, seed=0)
        assert not injector.should_fail("origin", 50.0)
        assert not injector.loses_message("a", "b")
        assert injector.latency_factor("a", "b") == 1.0

    def test_decision_stream_is_deterministic(self):
        profile = FaultProfile(link_loss_rate=0.3)
        a = profile.build(duration=10.0, seed=9)
        b = profile.build(duration=10.0, seed=9)
        draws_a = [a.loses_message("x", "y") for _ in range(50)]
        draws_b = [b.loses_message("x", "y") for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a)
