"""Tests for the flaky-storage wrapper and its backend spec."""

import random

import pytest

from repro.faults import FaultyBackendSpec, FlakyBackend
from repro.storage import BackendSpec
from repro.storage.backend import InMemoryBackend


def loaded(error_rate, rng=None):
    backend = FlakyBackend(
        InMemoryBackend(), error_rate=error_rate, rng=rng or random.Random(0)
    )
    for i in range(20):
        backend.put(f"k{i}", f"v{i}", size=10)
    return backend


class TestFlakyBackend:
    def test_zero_rate_is_transparent(self):
        backend = loaded(0.0)
        assert all(backend.get(f"k{i}") == f"v{i}" for i in range(20))
        assert backend.failures == 0

    def test_reads_fail_at_the_configured_rate(self):
        backend = loaded(0.5)
        results = [backend.get("k1") for _ in range(400)]
        misses = results.count(None)
        assert 140 < misses < 260
        assert backend.failures == misses

    def test_get_many_drops_failed_keys(self):
        backend = loaded(1.0)
        assert backend.get_many([f"k{i}" for i in range(20)]) == {}
        assert backend.failures == 20

    def test_writes_and_deletes_never_fail(self):
        backend = loaded(1.0)
        backend.put("fresh", "value", size=5)
        assert backend.remove("fresh") == "value"
        assert backend.remove_many(["k0"]) == {"k0": "v0"}

    def test_peek_and_scan_never_fail(self):
        backend = loaded(1.0)
        assert backend.peek("k1") == "v1"
        assert "k1" in backend
        assert len(dict(backend.scan())) == 20
        assert len(backend) == 20
        assert backend.bytes_used == 200

    def test_eviction_subscription_reaches_inner_engine(self):
        inner = InMemoryBackend()
        backend = FlakyBackend(inner, error_rate=0.0)
        seen = []
        backend.subscribe_evictions(lambda key, value: seen.append(key))
        inner._notify_eviction("k", "v")
        assert seen == ["k"]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FlakyBackend(InMemoryBackend(), error_rate=1.5)


class TestFaultyBackendSpec:
    def test_wrapping_preserves_engine_parameters(self):
        base = BackendSpec(kind="sharded", n_shards=4)
        spec = FaultyBackendSpec.wrapping(base, error_rate=0.1, fault_seed=3)
        assert spec.kind == "sharded"
        assert spec.n_shards == 4
        assert spec.error_rate == 0.1

    def test_build_wraps_with_flaky(self):
        spec = FaultyBackendSpec.wrapping(BackendSpec(), error_rate=0.2)
        engine = spec.build(salt="edge-1")
        assert isinstance(engine, FlakyBackend)
        assert engine.inner.kind == "inmemory"

    def test_zero_rate_builds_bare_engine(self):
        spec = FaultyBackendSpec.wrapping(BackendSpec(), error_rate=0.0)
        assert not isinstance(spec.build(salt="x"), FlakyBackend)

    def test_sibling_tiers_fail_independently_but_deterministically(self):
        spec = FaultyBackendSpec.wrapping(
            BackendSpec(), error_rate=0.5, fault_seed=1
        )

        def failure_pattern(salt):
            engine = spec.build(salt=salt)
            engine.put("k", "v", size=1)
            return [engine.get("k") is None for _ in range(50)]

        assert failure_pattern("edge-1") == failure_pattern("edge-1")
        assert failure_pattern("edge-1") != failure_pattern("edge-2")

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultyBackendSpec(error_rate=2.0)
