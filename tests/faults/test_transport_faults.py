"""Transport under injected faults: retries, failover, stale-if-error."""

import pytest

from repro.cdn import Cdn
from repro.faults import CircuitBreaker, FaultProfile, RetryPolicy
from repro.http import Request, Status, URL
from repro.simnet import FaultSchedule

from tests.faults.conftest import CLIENT_EDGE, CLIENT_ORIGIN, run_fetch


def get(path):
    return Request.get(URL.parse(path))


def lossy(rate=1.0):
    return FaultProfile(link_loss_rate=rate).build(duration=3600.0, seed=0)


class TestLostMessages:
    def test_single_attempt_times_out_and_synthesizes_503(
        self, env, make_transport, metrics
    ):
        transport = make_transport(faults=lossy())
        response = run_fetch(
            env, transport.fetch_direct("client", get("/page/1"))
        )
        assert response.status == Status.SERVICE_UNAVAILABLE
        assert response.served_by == "network"
        # No retry policy: one attempt, one default timeout.
        assert env.now == pytest.approx(1.0)
        assert metrics.counter("transport.lost_requests").value == 1

    def test_synthesized_503_is_uncacheable(self, env, make_transport):
        transport = make_transport(faults=lossy())
        response = run_fetch(
            env, transport.fetch_direct("client", get("/page/1"))
        )
        assert response.headers.get("Cache-Control") == "no-store"

    def test_retry_policy_spends_attempts_then_gives_up(
        self, env, make_transport, metrics
    ):
        policy = RetryPolicy(
            max_attempts=2,
            base_backoff=0.05,
            backoff_factor=2.0,
            attempt_timeout=0.5,
            budget=10.0,
        )
        transport = make_transport(faults=lossy(), retry=policy)
        response = run_fetch(
            env, transport.fetch_direct("client", get("/page/1"))
        )
        assert response.status == Status.SERVICE_UNAVAILABLE
        # timeout + backoff + timeout.
        assert env.now == pytest.approx(0.5 + 0.05 + 0.5)
        assert metrics.counter("transport.retries").value == 1
        assert metrics.counter("transport.lost_requests").value == 2


class TestRetryAgainstOutage:
    def test_retry_rides_out_a_short_outage(
        self, env, make_transport, metrics
    ):
        policy = RetryPolicy(
            max_attempts=3,
            base_backoff=0.1,
            backoff_factor=2.0,
            attempt_timeout=1.0,
            budget=10.0,
        )
        transport = make_transport(
            faults=FaultSchedule.origin_outage(0.0, 0.2), retry=policy
        )
        response = run_fetch(
            env, transport.fetch_direct("client", get("/page/1"))
        )
        # First attempt meets the outage (one RTT), backs off 0.1s,
        # second attempt lands after recovery.
        assert response.status == Status.OK
        assert env.now == pytest.approx(2 * CLIENT_ORIGIN + 0.1 + 2 * CLIENT_ORIGIN)
        assert metrics.counter("transport.retries").value == 1

    def test_time_budget_stops_retrying_early(
        self, env, make_transport, metrics
    ):
        policy = RetryPolicy(
            max_attempts=5,
            base_backoff=0.05,
            backoff_factor=2.0,
            attempt_timeout=1.0,
            budget=0.15,
        )
        transport = make_transport(
            faults=FaultSchedule.origin_outage(0.0, 100.0), retry=policy
        )
        response = run_fetch(
            env, transport.fetch_direct("client", get("/page/1"))
        )
        assert response.status == Status.SERVICE_UNAVAILABLE
        assert response.served_by == "origin"
        assert metrics.counter("transport.budget_exhausted").value == 1
        assert metrics.counter("transport.retries").value == 0


class TestLatencySpikes:
    def test_spikes_slow_every_leg(self, env, make_transport):
        profile = FaultProfile(
            latency_spike_rate=1.0, latency_spike_factor=5.0
        )
        transport = make_transport(
            faults=profile.build(duration=3600.0, seed=0)
        )
        response = run_fetch(
            env, transport.fetch_direct("client", get("/page/1"))
        )
        assert response.status == Status.OK
        assert env.now == pytest.approx(2 * CLIENT_ORIGIN * 5.0)


class TestEdgeFailover:
    def edge_down(self, start=0.0, end=100.0):
        faults = FaultSchedule()
        faults.add_outage("edge", start, end)
        return faults

    def test_dark_pop_fails_over_to_origin(
        self, env, make_transport, cdn, metrics
    ):
        transport = make_transport(faults=self.edge_down())
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert response.status == Status.OK
        assert response.served_by == "origin"
        # One client->edge leg (wasted) plus a direct round trip.
        assert env.now == pytest.approx(CLIENT_EDGE + 2 * CLIENT_ORIGIN)
        assert metrics.counter("transport.edge_failures").value == 1
        assert len(cdn.pop("edge").store) == 0

    def test_dark_pop_fails_over_for_a_whole_wave(
        self, env, make_transport, cdn
    ):
        transport = make_transport(faults=self.edge_down())
        responses = run_fetch(
            env,
            transport.fetch_many_via_cdn(
                "client", [get("/page/1"), get("/page/2")], cdn, "edge"
            ),
        )
        assert [r.status for r in responses] == [Status.OK, Status.OK]
        assert all(r.served_by == "origin" for r in responses)
        assert len(cdn.pop("edge").store) == 0

    def test_breaker_trips_to_pass_through(
        self, env, make_transport, cdn, metrics
    ):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=30.0, metrics=metrics
        )
        transport = make_transport(
            faults=self.edge_down(), breaker=breaker
        )
        run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert breaker.is_open("edge", env.now)
        start = env.now
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert response.status == Status.OK
        # Pass-through skips the edge leg entirely.
        assert env.now - start == pytest.approx(2 * CLIENT_ORIGIN)
        assert metrics.counter("breaker.pass_through").value == 1

    def test_breaker_wave_pass_through(self, env, make_transport, cdn, metrics):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=30.0, metrics=metrics
        )
        transport = make_transport(faults=self.edge_down(), breaker=breaker)
        run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        responses = run_fetch(
            env,
            transport.fetch_many_via_cdn(
                "client", [get("/page/1"), get("/page/2")], cdn, "edge"
            ),
        )
        assert all(r.status == Status.OK for r in responses)
        assert metrics.counter("breaker.pass_through").value == 1

    def test_breaker_probe_recloses_after_recovery(
        self, env, make_transport, cdn, metrics
    ):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=30.0, metrics=metrics
        )
        transport = make_transport(
            faults=self.edge_down(0.0, 100.0), breaker=breaker
        )
        run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert breaker.is_open("edge", env.now)
        env.run(until=150.0)
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        # The probe found the PoP healthy: breaker closes, edge fills.
        assert response.status == Status.OK
        assert not breaker.is_open("edge", env.now)
        assert len(cdn.pop("edge").store) == 1


class TestStaleIfError:
    def warm_then_kill_origin(self, env, make_transport, cdn, grace):
        faults = FaultSchedule.origin_outage(350.0, 10_000.0)
        transport = make_transport(faults=faults, stale_if_error=grace)
        first = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert first.status == Status.OK
        # Jump past the entry's TTL (pages: max-age=300) into the outage.
        env.run(until=400.0)
        return transport, first

    def test_edge_serves_bounded_stale_within_grace(
        self, env, make_transport, cdn, metrics
    ):
        transport, _ = self.warm_then_kill_origin(
            env, make_transport, cdn, grace=600.0
        )
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert response.status == Status.OK
        assert response.served_by == "edge"
        assert response.headers.get("X-Stale-If-Error") == "1"
        assert metrics.counter("transport.stale_if_error").value == 1

    def test_error_propagates_outside_grace(
        self, env, make_transport, cdn, metrics
    ):
        transport, _ = self.warm_then_kill_origin(
            env, make_transport, cdn, grace=60.0
        )
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        # The copy was verified ~400s ago: too stale for a 60s window.
        assert response.status == Status.SERVICE_UNAVAILABLE
        assert metrics.counter("transport.stale_if_error").value == 0

    def test_degraded_serving_is_never_304_converted(
        self, env, make_transport, cdn
    ):
        transport, first = self.warm_then_kill_origin(
            env, make_transport, cdn, grace=600.0
        )
        conditional = get("/page/1").with_header(
            "If-None-Match", first.headers.get("ETag")
        )
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", conditional, cdn, "edge"),
        )
        # A degraded answer must not pose as "your copy is current".
        assert response.status == Status.OK
        assert response.headers.get("X-Stale-If-Error") == "1"

    def test_degraded_serving_is_never_readmitted(
        self, env, make_transport, cdn
    ):
        transport, _ = self.warm_then_kill_origin(
            env, make_transport, cdn, grace=600.0
        )
        degraded = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        downstream = Cdn(["edge"]).pop("edge")
        returned = downstream.admit(get("/page/1"), degraded, env.now)
        assert returned.status == Status.OK
        assert downstream.store.peek(get("/page/1").url.cache_key()) is None
