"""Tests for the declarative fault profiles and their validation."""

import pytest

from repro.faults import PROFILES, FaultProfile


class TestValidation:
    def test_default_profile_is_inactive(self):
        assert not FaultProfile().is_active

    @pytest.mark.parametrize(
        "field",
        [
            "origin_outage_fraction",
            "origin_brownout_rate",
            "pop_outage_fraction",
            "link_loss_rate",
            "latency_spike_rate",
            "storage_error_rate",
        ],
    )
    def test_fractions_must_be_in_unit_interval(self, field):
        with pytest.raises(ValueError):
            FaultProfile(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultProfile(**{field: -0.1})

    def test_any_nonzero_rate_activates(self):
        for field in (
            "origin_outage_fraction",
            "origin_brownout_rate",
            "pop_outage_fraction",
            "link_loss_rate",
            "latency_spike_rate",
            "storage_error_rate",
        ):
            assert FaultProfile(**{field: 0.1}).is_active

    def test_spike_factor_must_slow_not_speed_up(self):
        with pytest.raises(ValueError):
            FaultProfile(latency_spike_factor=0.5)

    def test_outage_count_positive(self):
        with pytest.raises(ValueError):
            FaultProfile(origin_outage_count=0)


class TestRegistry:
    def test_canonical_names(self):
        assert set(PROFILES) == {
            "none",
            "outage",
            "flaky",
            "pop-down",
            "chaos",
        }

    def test_named_lookup(self):
        assert FaultProfile.named("outage").origin_outage_fraction == 0.10

    def test_named_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultProfile.named("earthquake")

    def test_none_profile_is_inactive(self):
        assert not PROFILES["none"].is_active

    def test_all_other_profiles_are_active(self):
        for name, profile in PROFILES.items():
            if name != "none":
                assert profile.is_active, name
