"""Tests for the transport layer (timing + cache interaction)."""

import pytest

from repro.http import Request, Status, URL

from tests.browser.conftest import (
    CLIENT_EDGE,
    CLIENT_ORIGIN,
    EDGE_ORIGIN,
    run_fetch,
)


def get(path):
    return Request.get(URL.parse(path))


class TestDirect:
    def test_round_trip_time(self, env, transport):
        response = run_fetch(
            env, transport.fetch_direct("client", get("/page/1"))
        )
        assert response.status == Status.OK
        assert env.now == pytest.approx(2 * CLIENT_ORIGIN)

    def test_origin_sees_arrival_time(self, env, transport, server):
        run_fetch(env, transport.fetch_direct("client", get("/page/1")))
        # The page was rendered when the request arrived (one one-way).
        key = server.version_key_for(URL.parse("/page/1"))
        assert server.versions.version_at(key, CLIENT_ORIGIN) == 1


class TestViaCdn:
    def test_miss_traverses_origin(self, env, transport, cdn):
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert response.status == Status.OK
        expected = 2 * CLIENT_EDGE + 2 * EDGE_ORIGIN
        assert env.now == pytest.approx(expected)

    def test_hit_skips_origin(self, env, transport, cdn):
        run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        start = env.now
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert response.served_by == "edge"
        assert env.now - start == pytest.approx(2 * CLIENT_EDGE)

    def test_hit_returns_same_version(self, env, transport, cdn, server):
        first = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        server.update("pages", "1", {"title": "new"}, at=env.now)
        # Without a purge the CDN keeps serving the old version (that is
        # the staleness problem the Cache Sketch exists to fix).
        second = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        assert second.served_by == "edge"
        assert second.version == first.version

    def test_expired_entry_revalidates_with_304(self, env, transport, cdn, server):
        run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        # StaticTtlPolicy gives pages max-age=300; jump past it.
        env.run(until=400.0)
        start = env.now
        response = run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        # Revalidation costs a full edge->origin round trip.
        assert env.now - start == pytest.approx(
            2 * CLIENT_EDGE + 2 * EDGE_ORIGIN
        )
        assert response.status == Status.OK
        assert response.version == 1
        revalidated = transport.origin_server  # origin answered with 304
        assert cdn.pop("edge").metrics.counter("edge.edge.revalidated").value == 1

    def test_nearest_edge_is_used_when_unspecified(self, env, transport, cdn):
        response = run_fetch(
            env, transport.fetch_via_cdn("client", get("/page/1"), cdn)
        )
        assert response.status == Status.OK
        assert len(cdn.pop("edge").store) == 1

    def test_content_length_drives_transfer_time(
        self, env, topology, transport, cdn
    ):
        from repro.simnet import ConstantDelay, Link

        # Rebuild the client-edge link with finite bandwidth.
        topology.connect(
            "client", "edge", Link(ConstantDelay(CLIENT_EDGE), bandwidth=100_000)
        )
        run_fetch(
            env,
            transport.fetch_via_cdn("client", get("/page/1"), cdn, "edge"),
        )
        # 20 kB at 100 kB/s adds 0.2 s on the client-edge leg.
        expected = 2 * CLIENT_EDGE + 2 * EDGE_ORIGIN + 0.2
        assert env.now == pytest.approx(expected)


class TestFetchManyViaCdn:
    def wave(self, *paths):
        return [get(path) for path in paths]

    def test_empty_wave_is_free(self, env, transport, cdn):
        responses = run_fetch(
            env,
            transport.fetch_many_via_cdn("client", [], cdn, "edge"),
        )
        assert responses == []
        assert env.now == 0.0

    def test_warm_wave_costs_one_edge_round_trip(self, env, transport, cdn):
        paths = ("/page/1", "/page/2", "/static/app.js")
        for path in paths:
            run_fetch(
                env, transport.fetch_via_cdn("client", get(path), cdn, "edge")
            )
        start = env.now
        responses = run_fetch(
            env,
            transport.fetch_many_via_cdn(
                "client", self.wave(*paths), cdn, "edge"
            ),
        )
        assert [r.served_by for r in responses] == ["edge"] * 3
        assert env.now - start == pytest.approx(2 * CLIENT_EDGE)

    def test_misses_fill_in_parallel(self, env, transport, cdn):
        responses = run_fetch(
            env,
            transport.fetch_many_via_cdn(
                "client",
                self.wave("/page/1", "/page/2", "/page/3"),
                cdn,
                "edge",
            ),
        )
        assert all(r.status == Status.OK for r in responses)
        # All three fills run concurrently: one edge RT + one origin RT.
        assert env.now == pytest.approx(2 * CLIENT_EDGE + 2 * EDGE_ORIGIN)

    def test_responses_in_request_order(self, env, transport, cdn):
        # Warm one of the three so hits and fills interleave.
        run_fetch(
            env, transport.fetch_via_cdn("client", get("/page/2"), cdn, "edge")
        )
        responses = run_fetch(
            env,
            transport.fetch_many_via_cdn(
                "client",
                self.wave("/page/1", "/page/2", "/page/3"),
                cdn,
                "edge",
            ),
        )
        assert [r.url.path for r in responses] == [
            "/page/1",
            "/page/2",
            "/page/3",
        ]

    def test_batched_overlap_hides_edge_store_latency(
        self, env, topology, server
    ):
        import random

        from repro.browser import Transport
        from repro.cdn import Cdn
        from repro.storage import BackendSpec

        spec = BackendSpec(kind="batched", overlap=True, seed=3)
        cdn = Cdn(["edge"], backend_spec=spec)
        transport = Transport(env, topology, server, random.Random(0))
        paths = ("/page/1", "/page/2", "/page/3")
        for path in paths:
            run_fetch(
                env, transport.fetch_via_cdn("client", get(path), cdn, "edge")
            )
        env.run()
        cdn.pop("edge").store.drain_latency()
        start = env.now
        run_fetch(
            env,
            transport.fetch_many_via_cdn(
                "client", self.wave(*paths), cdn, "edge"
            ),
        )
        # The single batched lookup round trip hides entirely under the
        # client-edge return leg.
        engine = cdn.pop("edge").store.backend
        assert engine.overlap_hidden > 0.0
        assert env.now - start == pytest.approx(2 * CLIENT_EDGE)
