"""Property tests for transport timing invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser import Transport
from repro.cdn import Cdn
from repro.http import Request, Status, URL
from repro.origin import (
    OriginServer,
    ResourceKind,
    ResourceSpec,
    Site,
)
from repro.sim import Environment
from repro.simnet import ConstantDelay, Link, NodeKind, Topology


def build(client_edge, edge_origin, client_origin):
    env = Environment()
    topo = Topology()
    topo.add_node("client", NodeKind.CLIENT)
    topo.add_node("edge", NodeKind.EDGE)
    topo.add_node("origin", NodeKind.ORIGIN)
    topo.connect("client", "edge", Link(ConstantDelay(client_edge)))
    topo.connect("edge", "origin", Link(ConstantDelay(edge_origin)))
    topo.connect("client", "origin", Link(ConstantDelay(client_origin)))
    site = Site()
    site.add_route(
        ResourceSpec(
            name="page",
            pattern="/p/{id}",
            kind=ResourceKind.PAGE,
            doc_keys=lambda p: [f"docs/{p['id']}"],
        )
    )
    site.store.put("docs", "1", {"x": 1})
    server = OriginServer(site)
    transport = Transport(env, topo, server, random.Random(0))
    return env, transport, Cdn(["edge"])


def run(env, generator):
    process = env.process(generator)
    env.run()
    return process.value


delays = st.tuples(
    st.floats(0.001, 0.1),  # client-edge
    st.floats(0.001, 0.1),  # edge-origin
    st.floats(0.001, 0.3),  # client-origin
)


@given(d=delays)
@settings(max_examples=30, deadline=None)
def test_cdn_hit_is_never_slower_than_the_miss(d):
    env, transport, cdn = build(*d)
    request = Request.get(URL.parse("/p/1"))
    start = env.now
    run(env, transport.fetch_via_cdn("client", request, cdn, "edge"))
    miss_time = env.now - start
    start = env.now
    response = run(
        env, transport.fetch_via_cdn("client", request, cdn, "edge")
    )
    hit_time = env.now - start
    assert response.served_by == "edge"
    assert hit_time <= miss_time + 1e-12


@given(d=delays)
@settings(max_examples=30, deadline=None)
def test_miss_time_decomposes_into_both_hops(d):
    client_edge, edge_origin, client_origin = d
    env, transport, cdn = build(*d)
    request = Request.get(URL.parse("/p/1"))
    run(env, transport.fetch_via_cdn("client", request, cdn, "edge"))
    assert env.now == pytest.approx(
        2 * client_edge + 2 * edge_origin, rel=1e-9
    )


@given(d=delays)
@settings(max_examples=30, deadline=None)
def test_direct_fetch_is_one_round_trip(d):
    _, _, client_origin = d
    env, transport, cdn = build(*d)
    request = Request.get(URL.parse("/p/1"))
    response = run(env, transport.fetch_direct("client", request))
    assert response.status == Status.OK
    assert env.now == pytest.approx(2 * client_origin, rel=1e-9)
