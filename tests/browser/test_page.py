"""Tests for the page load engine."""

import pytest

from repro.browser import (
    BrowserClient,
    PageLoadEngine,
    PageLoadResult,
    PageResource,
    PageSpec,
    TransportMode,
)
from repro.http import URL

from tests.browser.conftest import CLIENT_ORIGIN, run_fetch


def page_spec(asset_count=2, waves=(1,)):
    resources = []
    names = ["app.js", "style.css", "logo.png"]
    for wave in waves:
        for name in names[:asset_count]:
            resources.append(
                PageResource(URL.parse(f"/static/{wave}-{name}"), wave=wave)
            )
    return PageSpec(
        name="test-page", html=URL.parse("/page/1"), resources=resources
    )


@pytest.fixture
def loader(env, transport, site):
    # Register the wave-prefixed asset documents the specs reference.
    for wave in (1, 2):
        for name in ("app.js", "style.css", "logo.png"):
            site.store.put("assets", f"{wave}-{name}", {"name": name})
    client = BrowserClient("client", transport, mode=TransportMode.DIRECT)
    return PageLoadEngine(env, client)


class TestPageSpec:
    def test_waves_grouped_and_ordered(self):
        spec = PageSpec(
            name="p",
            html=URL.parse("/page/1"),
            resources=[
                PageResource(URL.parse("/static/late.js"), wave=2),
                PageResource(URL.parse("/static/early.js"), wave=1),
            ],
        )
        waves = spec.waves()
        assert len(waves) == 2
        assert waves[0][0].url.path == "/static/early.js"
        assert spec.request_count == 3

    def test_wave_zero_rejected(self):
        with pytest.raises(ValueError):
            PageResource(URL.parse("/x"), wave=0)

    def test_empty_page_has_no_waves(self):
        spec = PageSpec(name="p", html=URL.parse("/page/1"))
        assert spec.waves() == []


class TestPageLoad:
    def test_single_wave_parallel_timing(self, env, loader):
        result = run_fetch(env, loader.load(page_spec(asset_count=3)))
        assert isinstance(result, PageLoadResult)
        # HTML round trip + one parallel wave round trip.
        assert result.plt == pytest.approx(2 * 2 * CLIENT_ORIGIN)
        assert result.time_to_html == pytest.approx(2 * CLIENT_ORIGIN)
        assert len(result.responses) == 4

    def test_two_waves_are_sequential(self, env, loader):
        result = run_fetch(
            env, loader.load(page_spec(asset_count=2, waves=(1, 2)))
        )
        assert result.plt == pytest.approx(3 * 2 * CLIENT_ORIGIN)

    def test_connection_limit_serializes_batches(self, env, transport, site):
        for i in range(8):
            site.store.put("assets", f"file{i}.js", {"i": i})
        client = BrowserClient("client", transport, mode=TransportMode.DIRECT)
        loader = PageLoadEngine(env, client, max_parallel=4)
        spec = PageSpec(
            name="heavy",
            html=URL.parse("/page/1"),
            resources=[
                PageResource(URL.parse(f"/static/file{i}.js")) for i in range(8)
            ],
        )
        result = run_fetch(env, loader.load(spec))
        # 8 assets at parallelism 4 -> two batches after the HTML.
        assert result.plt == pytest.approx(3 * 2 * CLIENT_ORIGIN)

    def test_repeat_load_is_fully_cached(self, env, loader):
        run_fetch(env, loader.load(page_spec(asset_count=2)))
        start = env.now
        result = run_fetch(env, loader.load(page_spec(asset_count=2)))
        assert result.plt == 0.0
        assert result.served_by_counts() == {"browser:client": 3}

    def test_served_by_counts(self, env, loader):
        result = run_fetch(env, loader.load(page_spec(asset_count=2)))
        assert result.served_by_counts() == {"origin": 3}

    def test_max_parallel_validation(self, env, loader):
        with pytest.raises(ValueError):
            PageLoadEngine(env, loader.fetcher, max_parallel=0)
