"""Tests for the baseline browser client."""

import pytest

from repro.browser import BrowserClient, TransportMode
from repro.http import Request, Status, URL

from tests.browser.conftest import CLIENT_EDGE, CLIENT_ORIGIN, run_fetch


def get(path):
    return Request.get(URL.parse(path))


@pytest.fixture
def direct_client(transport):
    return BrowserClient("client", transport, mode=TransportMode.DIRECT)


@pytest.fixture
def cdn_client(transport, cdn):
    return BrowserClient(
        "client", transport, mode=TransportMode.CDN, cdn=cdn
    )


class TestConstruction:
    def test_cdn_mode_requires_cdn(self, transport):
        with pytest.raises(ValueError):
            BrowserClient("client", transport, mode=TransportMode.CDN)


class TestDirectMode:
    def test_first_fetch_goes_to_origin(self, env, direct_client):
        response = run_fetch(env, direct_client.fetch(get("/page/1")))
        assert response.status == Status.OK
        assert response.served_by == "origin"
        assert env.now == pytest.approx(2 * CLIENT_ORIGIN)

    def test_second_fetch_hits_browser_cache(self, env, direct_client):
        run_fetch(env, direct_client.fetch(get("/page/1")))
        start = env.now
        response = run_fetch(env, direct_client.fetch(get("/page/1")))
        assert response.served_by == "browser:client"
        assert env.now == start  # zero network time

    def test_expired_entry_revalidates(self, env, direct_client, server):
        run_fetch(env, direct_client.fetch(get("/page/1")))
        env.run(until=400.0)  # past the 300 s page TTL
        response = run_fetch(env, direct_client.fetch(get("/page/1")))
        assert response.status == Status.OK
        assert response.version == 1
        # Once revalidated the copy is fresh again with zero latency.
        start = env.now
        again = run_fetch(env, direct_client.fetch(get("/page/1")))
        assert again.served_by == "browser:client"
        assert env.now == start

    def test_revalidation_fetches_new_version_on_change(
        self, env, direct_client, server
    ):
        run_fetch(env, direct_client.fetch(get("/page/1")))
        server.update("pages", "1", {"title": "new"}, at=env.now)
        env.run(until=400.0)
        response = run_fetch(env, direct_client.fetch(get("/page/1")))
        assert response.version == 2

    def test_hit_ratio_tracked(self, env, direct_client):
        run_fetch(env, direct_client.fetch(get("/page/1")))
        run_fetch(env, direct_client.fetch(get("/page/1")))
        assert direct_client.cache.hit_ratio() == pytest.approx(0.5)


class TestCdnMode:
    def test_miss_fills_both_caches(self, env, cdn_client, cdn):
        run_fetch(env, cdn_client.fetch(get("/page/1")))
        assert len(cdn.pop("edge").store) == 1
        assert len(cdn_client.cache.store) == 1

    def test_browser_cache_wins_over_cdn(self, env, cdn_client):
        run_fetch(env, cdn_client.fetch(get("/page/1")))
        start = env.now
        response = run_fetch(env, cdn_client.fetch(get("/page/1")))
        assert response.served_by == "browser:client"
        assert env.now == start

    def test_cdn_serves_other_clients_content(
        self, env, transport, cdn, cdn_client
    ):
        run_fetch(env, cdn_client.fetch(get("/page/1")))
        from repro.browser import BrowserClient

        other = BrowserClient(
            "client", transport, mode=TransportMode.CDN, cdn=cdn
        )
        start = env.now
        response = run_fetch(env, other.fetch(get("/page/1")))
        assert response.served_by == "edge"
        assert env.now - start == pytest.approx(2 * CLIENT_EDGE)


class TestFetchMany:
    def test_cdn_wave_batches_misses(self, env, cdn_client, cdn):
        requests = [get("/page/1"), get("/page/2"), get("/static/app.js")]
        responses = run_fetch(env, cdn_client.fetch_many(requests))
        assert [r.status for r in responses] == [Status.OK] * 3
        assert len(cdn.pop("edge").store) == 3
        assert len(cdn_client.cache.store) == 3

    def test_browser_hits_answered_locally(self, env, cdn_client):
        run_fetch(env, cdn_client.fetch(get("/page/1")))
        start = env.now
        responses = run_fetch(
            env, cdn_client.fetch_many([get("/page/1"), get("/page/2")])
        )
        assert responses[0].served_by == "browser:client"
        assert responses[1].served_by == "origin"
        # Only the miss travels: one edge RT (fill runs inside it).
        assert env.now > start

    def test_warm_wave_is_one_edge_round_trip(
        self, env, transport, cdn, cdn_client
    ):
        requests = [get("/page/1"), get("/page/2"), get("/page/3")]
        run_fetch(env, cdn_client.fetch_many(requests))
        other = BrowserClient(
            "client", transport, mode=TransportMode.CDN, cdn=cdn
        )
        start = env.now
        responses = run_fetch(env, other.fetch_many(requests))
        assert [r.served_by for r in responses] == ["edge"] * 3
        assert env.now - start == pytest.approx(2 * CLIENT_EDGE)

    def test_direct_mode_falls_back_to_parallel_fetches(
        self, env, direct_client
    ):
        requests = [get("/page/1"), get("/page/2")]
        responses = run_fetch(env, direct_client.fetch_many(requests))
        assert [r.served_by for r in responses] == ["origin", "origin"]
        # Parallel, not serialized: one direct round trip total.
        assert env.now == pytest.approx(2 * CLIENT_ORIGIN)

    def test_empty_wave(self, env, cdn_client):
        assert run_fetch(env, cdn_client.fetch_many([])) == []
