"""Tests for the browser's private cache node."""

import pytest

from repro.browser import BrowserCache
from repro.http import Headers, Request, Response, Status, URL


def response(cache_control, size=100):
    return Response(
        status=Status.OK,
        headers=Headers(
            {
                "Cache-Control": cache_control,
                "Content-Length": str(size),
                "ETag": '"v1"',
            }
        ),
        url=URL.of("/r"),
        version=1,
        generated_at=0.0,
    )


def get():
    return Request.get(URL.of("/r"))


def test_private_responses_are_stored():
    cache = BrowserCache("b")
    cache.admit(get(), response("private, max-age=60"), now=0.0)
    assert cache.serve(get(), now=1.0) is not None


def test_uses_max_age_not_s_maxage():
    cache = BrowserCache("b")
    cache.admit(get(), response("max-age=10, s-maxage=1000"), now=0.0)
    assert cache.serve(get(), now=5.0) is not None
    assert cache.serve(get(), now=50.0) is None


def test_not_shared():
    assert not BrowserCache("b").shared


def test_byte_bound_applies():
    cache = BrowserCache("b", max_bytes=250)
    for index in range(3):
        url = URL.of(f"/r{index}")
        cache.admit(
            Request.get(url),
            Response(
                status=Status.OK,
                headers=Headers(
                    {
                        "Cache-Control": "max-age=60",
                        "Content-Length": "100",
                    }
                ),
                url=url,
                version=1,
                generated_at=0.0,
            ),
            now=float(index),
        )
    assert cache.store.total_bytes <= 250


def test_metric_scope_is_browser():
    cache = BrowserCache("device-1")
    cache.serve(get(), now=0.0)  # miss
    assert cache.metrics.counter("browser.device-1.miss").value == 1


def test_serve_even_stale_returns_expired_entries():
    cache = BrowserCache("b")
    cache.admit(get(), response("max-age=5"), now=0.0)
    assert cache.serve(get(), now=100.0) is None
    stale = cache.serve_even_stale(get(), now=100.0)
    assert stale is not None
    assert stale.version == 1
