"""Tests for the plain Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import BloomFilter
from repro.sketch.bloom import index_positions


class TestBasics:
    def test_added_keys_are_found(self):
        bf = BloomFilter(bits=1024, hashes=3)
        bf.add("alpha")
        bf.add("beta")
        assert "alpha" in bf
        assert "beta" in bf

    def test_empty_filter_contains_nothing(self):
        bf = BloomFilter(bits=1024, hashes=3)
        assert "anything" not in bf
        assert bf.is_empty()

    def test_update_adds_many(self):
        bf = BloomFilter(bits=4096, hashes=3)
        bf.update(f"key-{i}" for i in range(50))
        assert all(f"key-{i}" in bf for i in range(50))
        assert bf.count == 50

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=0, hashes=3)
        with pytest.raises(ValueError):
            BloomFilter(bits=10, hashes=0)

    def test_positions_deterministic(self):
        a = index_positions("key", 1000, 5)
        b = index_positions("key", 1000, 5)
        assert a == b
        assert len(a) == 5
        assert all(0 <= p < 1000 for p in a)

    def test_clear(self):
        bf = BloomFilter(bits=128, hashes=2)
        bf.add("x")
        bf.clear()
        assert bf.is_empty()
        assert bf.count == 0


class TestStatistics:
    def test_fill_ratio_and_bits_set(self):
        bf = BloomFilter(bits=100, hashes=2)
        assert bf.fill_ratio() == 0.0
        bf.add("x")
        assert 1 <= bf.bits_set() <= 2
        assert bf.fill_ratio() == bf.bits_set() / 100

    def test_observed_fpr_grows_with_load(self):
        bf = BloomFilter(bits=256, hashes=3)
        empty_fpr = bf.observed_fpr()
        bf.update(f"k{i}" for i in range(100))
        assert bf.observed_fpr() > empty_fpr

    def test_cardinality_estimate_tracks_inserts(self):
        bf = BloomFilter(bits=16384, hashes=5)
        bf.update(f"k{i}" for i in range(500))
        assert bf.estimated_cardinality() == pytest.approx(500, rel=0.15)

    def test_cardinality_of_saturated_filter_is_inf(self):
        bf = BloomFilter(bits=8, hashes=1)
        bf.update(f"k{i}" for i in range(200))
        if bf.fill_ratio() == 1.0:
            assert bf.estimated_cardinality() == float("inf")

    def test_measured_fpr_close_to_theory(self):
        # 1000 elements in an (m, k) sized for 5% FPR: measure on keys
        # never inserted.
        from repro.sketch import optimal_parameters

        m, k = optimal_parameters(1000, 0.05)
        bf = BloomFilter(m, k)
        bf.update(f"member-{i}" for i in range(1000))
        false_positives = sum(
            1 for i in range(10_000) if f"other-{i}" in bf
        )
        assert false_positives / 10_000 == pytest.approx(0.05, abs=0.02)


class TestSetOperations:
    def test_union(self):
        a = BloomFilter(bits=512, hashes=3)
        b = BloomFilter(bits=512, hashes=3)
        a.add("left")
        b.add("right")
        both = a.union(b)
        assert "left" in both and "right" in both

    def test_union_requires_same_parameters(self):
        a = BloomFilter(bits=512, hashes=3)
        b = BloomFilter(bits=256, hashes=3)
        with pytest.raises(ValueError):
            a.union(b)

    def test_copy_is_independent(self):
        a = BloomFilter(bits=128, hashes=2)
        a.add("x")
        b = a.copy()
        b.add("y")
        assert "y" in b and "y" not in a


class TestSerialization:
    def test_round_trip(self):
        bf = BloomFilter(bits=300, hashes=4)
        bf.update(f"k{i}" for i in range(20))
        data = bf.to_bytes()
        restored = BloomFilter.from_bytes(data, bits=300, hashes=4)
        assert all(f"k{i}" in restored for i in range(20))
        assert restored.bits_set() == bf.bits_set()

    def test_transfer_size(self):
        assert BloomFilter(bits=300, hashes=4).transfer_size_bytes() == 38
        assert BloomFilter(bits=8, hashes=1).transfer_size_bytes() == 1

    def test_from_bytes_too_short_raises(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"\x00", bits=300, hashes=4)

    def test_sparse_filters_compress_well(self):
        bf = BloomFilter(bits=80_000, hashes=5)
        bf.update(f"k{i}" for i in range(10))  # very sparse
        assert bf.compressed_size_bytes() < bf.transfer_size_bytes() / 5

    def test_dense_filters_compress_poorly(self):
        bf = BloomFilter(bits=8_000, hashes=5)
        bf.update(f"k{i}" for i in range(5_000))  # near-saturated
        # Compression cannot do much for random dense bits.
        assert bf.compressed_size_bytes() > bf.transfer_size_bytes() / 3


class TestProperties:
    @given(keys=st.lists(st.text(min_size=1, max_size=30), max_size=100))
    @settings(max_examples=50)
    def test_no_false_negatives_ever(self, keys):
        bf = BloomFilter(bits=2048, hashes=4)
        for key in keys:
            bf.add(key)
        assert all(key in bf for key in keys)

    @given(
        keys=st.lists(
            st.text(min_size=1, max_size=20), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50)
    def test_serialization_preserves_membership(self, keys):
        bf = BloomFilter(bits=1024, hashes=3)
        for key in keys:
            bf.add(key)
        restored = BloomFilter.from_bytes(bf.to_bytes(), 1024, 3)
        assert all(key in restored for key in keys)
