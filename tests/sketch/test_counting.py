"""Tests for the counting Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import CountingBloomFilter


class TestAddRemove:
    def test_add_then_contains(self):
        cbf = CountingBloomFilter(bits=512, hashes=3)
        cbf.add("k")
        assert "k" in cbf
        assert cbf.count == 1

    def test_remove_makes_key_disappear(self):
        cbf = CountingBloomFilter(bits=512, hashes=3)
        cbf.add("k")
        cbf.remove("k")
        assert "k" not in cbf
        assert cbf.count == 0
        assert cbf.is_empty()

    def test_double_add_needs_double_remove(self):
        cbf = CountingBloomFilter(bits=512, hashes=3)
        cbf.add("k")
        cbf.add("k")
        cbf.remove("k")
        assert "k" in cbf
        cbf.remove("k")
        assert "k" not in cbf

    def test_removing_absent_key_raises(self):
        cbf = CountingBloomFilter(bits=512, hashes=3)
        with pytest.raises(KeyError):
            cbf.remove("never-added")

    def test_removal_does_not_disturb_other_keys(self):
        cbf = CountingBloomFilter(bits=4096, hashes=3)
        for i in range(100):
            cbf.add(f"keep-{i}")
        cbf.add("victim")
        cbf.remove("victim")
        assert all(f"keep-{i}" in cbf for i in range(100))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(bits=-1, hashes=3)
        with pytest.raises(ValueError):
            CountingBloomFilter(bits=16, hashes=0)


class TestFlatten:
    def test_flatten_preserves_membership(self):
        cbf = CountingBloomFilter(bits=1024, hashes=4)
        for i in range(30):
            cbf.add(f"k{i}")
        flat = cbf.flatten()
        assert all(f"k{i}" in flat for i in range(30))
        assert flat.bits_set() == cbf.bits_set()
        assert flat.count == cbf.count

    def test_flatten_is_a_snapshot(self):
        cbf = CountingBloomFilter(bits=1024, hashes=4)
        cbf.add("old")
        flat = cbf.flatten()
        cbf.add("new")
        assert "new" not in flat

    def test_clear(self):
        cbf = CountingBloomFilter(bits=128, hashes=2)
        cbf.add("x")
        cbf.clear()
        assert cbf.is_empty() and cbf.count == 0


class TestProperties:
    @given(
        keys=st.lists(
            st.text(min_size=1, max_size=15), min_size=1, max_size=40
        )
    )
    @settings(max_examples=50)
    def test_add_all_remove_all_yields_empty(self, keys):
        cbf = CountingBloomFilter(bits=2048, hashes=3)
        for key in keys:
            cbf.add(key)
        for key in keys:
            cbf.remove(key)
        assert cbf.is_empty()
        assert cbf.count == 0

    @given(
        keys=st.lists(
            st.text(min_size=1, max_size=15),
            min_size=2,
            max_size=40,
            unique=True,
        )
    )
    @settings(max_examples=50)
    def test_removing_half_keeps_other_half(self, keys):
        cbf = CountingBloomFilter(bits=4096, hashes=3)
        for key in keys:
            cbf.add(key)
        half = len(keys) // 2
        for key in keys[:half]:
            cbf.remove(key)
        # No false negatives on the survivors.
        assert all(key in cbf for key in keys[half:])
