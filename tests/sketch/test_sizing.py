"""Tests for Bloom filter sizing math."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sketch import (
    expected_fpr,
    optimal_bits,
    optimal_hashes,
    optimal_parameters,
)


def test_known_textbook_value():
    # n=1000, p=0.01 -> m ~ 9586 bits, k ~ 7.
    m = optimal_bits(1000, 0.01)
    assert m == pytest.approx(9586, abs=2)
    assert optimal_hashes(m, 1000) == 7


def test_lower_fpr_needs_more_bits():
    assert optimal_bits(1000, 0.001) > optimal_bits(1000, 0.05)


def test_more_elements_need_more_bits():
    assert optimal_bits(10_000, 0.01) > optimal_bits(1000, 0.01)


def test_validation():
    with pytest.raises(ValueError):
        optimal_bits(0, 0.01)
    with pytest.raises(ValueError):
        optimal_bits(100, 0.0)
    with pytest.raises(ValueError):
        optimal_bits(100, 1.0)
    with pytest.raises(ValueError):
        optimal_hashes(0, 10)
    with pytest.raises(ValueError):
        expected_fpr(0, 1, 10)
    with pytest.raises(ValueError):
        expected_fpr(10, 1, -1)


def test_expected_fpr_zero_elements():
    assert expected_fpr(1000, 3, 0) == 0.0


def test_expected_fpr_monotone_in_n():
    fprs = [expected_fpr(10_000, 5, n) for n in (10, 100, 1000, 5000)]
    assert fprs == sorted(fprs)
    assert all(0.0 <= f <= 1.0 for f in fprs)


@given(n=st.integers(1, 100_000), p=st.floats(0.0001, 0.5))
def test_optimal_parameters_hit_the_target(n, p):
    m, k = optimal_parameters(n, p)
    achieved = expected_fpr(m, k, n)
    # Optimal sizing should come within a small factor of the target.
    assert achieved <= p * 1.5 + 1e-9


@given(m=st.integers(8, 10**6), n=st.integers(1, 10**5))
def test_optimal_hashes_at_least_one(m, n):
    assert optimal_hashes(m, n) >= 1


def test_asymptotic_formula_agreement():
    # expected_fpr approximates (1 - e^{-kn/m})^k for large m.
    m, k, n = 100_000, 5, 10_000
    approx = (1 - math.exp(-k * n / m)) ** k
    assert expected_fpr(m, k, n) == pytest.approx(approx, rel=0.01)
