"""Tests for the server/client Cache Sketch protocol objects."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import ServerCacheSketch


@pytest.fixture
def sketch():
    return ServerCacheSketch(capacity=1000, target_fpr=0.01)


class TestWriteSemantics:
    def test_write_without_cached_copies_not_added(self, sketch):
        assert not sketch.report_write("k", now=10.0)
        assert not sketch.contains("k", now=10.0)

    def test_write_with_unexpired_copy_added(self, sketch):
        sketch.report_read("k", expires_at=100.0, now=0.0)
        assert sketch.report_write("k", now=10.0)
        assert sketch.contains("k", now=10.0)

    def test_write_after_copy_expired_not_added(self, sketch):
        sketch.report_read("k", expires_at=50.0, now=0.0)
        assert not sketch.report_write("k", now=60.0)
        assert not sketch.contains("k", now=60.0)

    def test_key_leaves_sketch_when_copies_expire(self, sketch):
        sketch.report_read("k", expires_at=100.0, now=0.0)
        sketch.report_write("k", now=10.0)
        assert sketch.contains("k", now=99.0)
        assert not sketch.contains("k", now=100.0)

    def test_removal_uses_latest_expiration(self, sketch):
        sketch.report_read("k", expires_at=50.0, now=0.0)
        sketch.report_read("k", expires_at=200.0, now=1.0)
        sketch.report_write("k", now=10.0)
        assert sketch.contains("k", now=150.0)
        assert not sketch.contains("k", now=200.0)

    def test_expired_read_is_ignored(self, sketch):
        sketch.report_read("k", expires_at=5.0, now=10.0)
        assert not sketch.report_write("k", now=11.0)

    def test_double_write_single_membership(self, sketch):
        sketch.report_read("k", expires_at=100.0, now=0.0)
        sketch.report_write("k", now=10.0)
        sketch.report_write("k", now=20.0)
        assert sketch.stale_key_count(now=20.0) == 1
        assert not sketch.contains("k", now=100.0)

    def test_second_write_extends_removal_for_newer_copies(self, sketch):
        sketch.report_read("k", expires_at=100.0, now=0.0)
        sketch.report_write("k", now=10.0)
        # New version handed out, cached until t=300.
        sketch.report_read("k", expires_at=300.0, now=20.0)
        # That newer copy goes stale too:
        sketch.report_write("k", now=30.0)
        assert sketch.contains("k", now=250.0)
        assert not sketch.contains("k", now=300.0)

    def test_fresh_read_does_not_extend_pending_removal(self, sketch):
        sketch.report_read("k", expires_at=100.0, now=0.0)
        sketch.report_write("k", now=10.0)
        # Copy of the *new* version handed out with a long lifetime:
        sketch.report_read("k", expires_at=500.0, now=20.0)
        # Without further writes the key leaves at the *old* horizon.
        assert not sketch.contains("k", now=100.0)


class TestSnapshot:
    def test_snapshot_contains_stale_keys_only(self, sketch):
        sketch.report_read("stale", expires_at=100.0, now=0.0)
        sketch.report_read("fresh", expires_at=100.0, now=0.0)
        sketch.report_write("stale", now=10.0)
        snap = sketch.snapshot(now=20.0)
        assert snap.contains("stale")
        assert not snap.contains("fresh")
        assert snap.generated_at == 20.0

    def test_snapshot_is_immutable_view(self, sketch):
        sketch.report_read("a", expires_at=100.0, now=0.0)
        snap = sketch.snapshot(now=1.0)
        sketch.report_write("a", now=2.0)
        assert not snap.contains("a")  # taken before the write

    def test_snapshot_age(self, sketch):
        snap = sketch.snapshot(now=10.0)
        assert snap.age(now=25.0) == 15.0
        assert snap.age(now=5.0) == 0.0

    def test_snapshot_advances_removals(self, sketch):
        sketch.report_read("k", expires_at=50.0, now=0.0)
        sketch.report_write("k", now=10.0)
        snap = sketch.snapshot(now=60.0)
        assert not snap.contains("k")

    def test_transfer_size_matches_filter(self, sketch):
        snap = sketch.snapshot(now=0.0)
        assert snap.transfer_size_bytes() == (
            snap.filter.transfer_size_bytes()
        )


class TestBookkeeping:
    def test_counters(self, sketch):
        sketch.report_read("a", expires_at=10.0, now=0.0)
        sketch.report_read("b", expires_at=10.0, now=0.0)
        sketch.report_write("a", now=1.0)
        assert sketch.reads_reported == 2
        assert sketch.writes_reported == 1
        assert sketch.additions == 1

    def test_stale_key_count(self, sketch):
        for key in ("a", "b", "c"):
            sketch.report_read(key, expires_at=100.0, now=0.0)
        sketch.report_write("a", now=1.0)
        sketch.report_write("b", now=1.0)
        assert sketch.stale_key_count(now=1.0) == 2
        assert sketch.stale_key_count(now=100.0) == 0


class TestOverload:
    def test_saturation_degrades_to_revalidation_not_staleness(self):
        """A sketch sized for 50 keys loaded with 5000: the fill ratio
        explodes and false positives approach 1 — which costs
        revalidations, never staleness. No key already marked stale is
        ever reported absent."""
        sketch = ServerCacheSketch(capacity=50, target_fpr=0.05)
        for i in range(5000):
            key = f"k{i}"
            sketch.report_read(key, expires_at=10_000.0, now=0.0)
            sketch.report_write(key, now=1.0)
        snapshot = sketch.snapshot(now=2.0)
        # Safety holds under gross overload.
        assert all(snapshot.contains(f"k{i}") for i in range(5000))
        # The filter is (near-)saturated; clients just revalidate more.
        assert snapshot.filter.fill_ratio() > 0.9

    def test_recovery_after_overload(self):
        """Once the overload's copies expire, the filter empties and
        the false-positive rate returns to normal."""
        sketch = ServerCacheSketch(capacity=50, target_fpr=0.05)
        for i in range(5000):
            key = f"k{i}"
            sketch.report_read(key, expires_at=100.0, now=0.0)
            sketch.report_write(key, now=1.0)
        sketch.advance(now=200.0)
        assert sketch.filter.is_empty()
        assert sketch.stale_key_count(200.0) == 0


class TestPropertyBased:
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(["read", "write"]),
                st.sampled_from(["k1", "k2", "k3"]),
                st.floats(0.1, 50.0),  # ttl for reads
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_filter_never_underflows_and_empties_eventually(self, events):
        sketch = ServerCacheSketch(capacity=100, target_fpr=0.05)
        now = 0.0
        for kind, key, ttl in events:
            now += 1.0
            if kind == "read":
                sketch.report_read(key, expires_at=now + ttl, now=now)
            else:
                sketch.report_write(key, now=now)
        # After every expiration horizon passes, the filter must be
        # completely empty again (all removals fire, no leaks).
        sketch.advance(now + 100.0)
        assert sketch.filter.is_empty()
        assert sketch.stale_key_count(now + 100.0) == 0

    @given(
        ttls=st.lists(st.floats(1.0, 100.0), min_size=1, max_size=20),
    )
    @settings(max_examples=60)
    def test_key_in_sketch_exactly_until_max_expiration(self, ttls):
        sketch = ServerCacheSketch(capacity=100, target_fpr=0.05)
        for i, ttl in enumerate(ttls):
            sketch.report_read("k", expires_at=ttl, now=0.0)
        sketch.report_write("k", now=0.5)
        horizon = max(ttls)
        if horizon > 0.5:
            assert sketch.contains("k", now=horizon - 1e-6)
        assert not sketch.contains("k", now=horizon)
