"""Tests for the rotating (time-windowed) cache sketch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import RotatingCacheSketch, ServerCacheSketch


@pytest.fixture
def sketch():
    return RotatingCacheSketch(horizon=100.0, window=50.0, capacity=500)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            RotatingCacheSketch(horizon=0.0)
        with pytest.raises(ValueError):
            RotatingCacheSketch(horizon=10.0, window=0.0)

    def test_written_key_is_present(self, sketch):
        sketch.report_write("k", now=10.0)
        assert sketch.contains("k", now=10.0)

    def test_unwritten_key_absent(self, sketch):
        assert not sketch.contains("ghost", now=0.0)

    def test_key_survives_horizon(self, sketch):
        sketch.report_write("k", now=10.0)
        assert sketch.contains("k", now=109.0)

    def test_key_dropped_after_horizon_plus_window(self, sketch):
        sketch.report_write("k", now=10.0)
        # Written into window [0, 50); with 3 live windows it is gone
        # once windows [0,50) rotates out, i.e. from t=200.
        assert not sketch.contains("k", now=200.0)

    def test_read_reporting_is_a_noop(self, sketch):
        sketch.report_read("k", expires_at=1000.0, now=0.0)
        assert not sketch.contains("k", now=0.0)

    def test_window_count_covers_horizon(self):
        sketch = RotatingCacheSketch(horizon=300.0, window=60.0)
        assert sketch.window_count == 6  # ceil(300/60) + 1

    def test_live_windows_bounded(self, sketch):
        for t in range(0, 1000, 10):
            sketch.report_write(f"k{t}", now=float(t))
        assert sketch.live_windows() <= sketch.window_count


class TestSnapshot:
    def test_snapshot_unions_all_windows(self, sketch):
        sketch.report_write("old", now=10.0)
        sketch.report_write("new", now=60.0)  # different window
        snap = sketch.snapshot(now=70.0)
        assert snap.contains("old")
        assert snap.contains("new")
        assert snap.generated_at == 70.0

    def test_snapshot_excludes_rotated_out_keys(self, sketch):
        sketch.report_write("ancient", now=0.0)
        snap = sketch.snapshot(now=500.0)
        assert not snap.contains("ancient")


class TestVersusCounting:
    def test_rotating_retains_longer_than_counting(self):
        """Over-retention: the rotating sketch keeps keys past the
        copies' actual expiry; the counting sketch removes exactly."""
        counting = ServerCacheSketch(capacity=500)
        rotating = RotatingCacheSketch(horizon=100.0, window=100.0)
        counting.report_read("k", expires_at=50.0, now=0.0)
        counting.report_write("k", now=10.0)
        rotating.report_write("k", now=10.0)
        # At t=60 the only copy has expired: counting removes, rotating
        # conservatively keeps.
        assert not counting.contains("k", now=60.0)
        assert rotating.contains("k", now=60.0)

    def test_both_never_miss_a_recent_write(self):
        counting = ServerCacheSketch(capacity=500)
        rotating = RotatingCacheSketch(horizon=100.0, window=50.0)
        counting.report_read("k", expires_at=100.0, now=0.0)
        counting.report_write("k", now=10.0)
        rotating.report_write("k", now=10.0)
        for t in (10.0, 30.0, 80.0):
            assert counting.contains("k", now=t)
            assert rotating.contains("k", now=t)

    @given(
        writes=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.floats(0.0, 400.0),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_no_false_negatives_within_horizon(self, writes):
        """Safety property: any key written within the last `horizon`
        seconds must still be in the sketch (no staleness escapes)."""
        sketch = RotatingCacheSketch(horizon=100.0, window=25.0)
        ordered = sorted(writes, key=lambda pair: pair[1])
        for key, at in ordered:
            sketch.report_write(key, now=at)
        if not ordered:
            return
        now = ordered[-1][1]
        for key, at in ordered:
            if now - at <= 100.0:
                assert sketch.contains(key, now=now)
