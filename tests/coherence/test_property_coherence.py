"""Property-based verification of Δ-atomicity on random schedules.

Hypothesis drives a miniature but complete Speed Kit deployment
(origin + sketch + pipeline + CDN + two service workers) through
arbitrary interleavings of reads, writes, time gaps, and sketch
refreshes — and the checker must find zero Δ-atomicity violations in
every single schedule. This is the strongest correctness statement the
test suite makes about the protocol.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser import Transport
from repro.coherence import DeltaAtomicityChecker, SketchClient
from repro.http import Request, Status, URL
from repro.origin import (
    PersonalizationKind,
    ResourceKind,
    ResourceSpec,
    Site,
)
from repro.sim import Environment
from repro.simnet.topology import two_tier
from repro.speedkit import (
    ConsentManager,
    PiiVault,
    SegmentResolver,
    SegmentScheme,
    ServiceWorkerProxy,
    SpeedKitBackend,
    SpeedKitConfig,
)

DELTA = 20.0
PURGE_LATENCY = 0.08
PRODUCTS = ("0", "1", "2")

operations = st.lists(
    st.tuples(
        st.sampled_from(["read_a", "read_b", "write", "refresh_a", "gap"]),
        st.sampled_from(PRODUCTS),
        st.floats(min_value=0.1, max_value=30.0),
    ),
    min_size=1,
    max_size=40,
)


def build_stack():
    env = Environment()
    site = Site()
    site.add_route(
        ResourceSpec(
            name="product",
            pattern="/product/{id}",
            kind=ResourceKind.PAGE,
            personalization=PersonalizationKind.SEGMENT,
            doc_keys=lambda p: [f"products/{p['id']}"],
            size_bytes=5000,
            ttl_hint=60.0,
        )
    )
    for product_id in PRODUCTS:
        site.store.put("products", product_id, {"price": 10})
    backend = SpeedKitBackend(
        env,
        site,
        pop_names=["edge"],
        detection_latency=0.02,
        purge_latency=PURGE_LATENCY,
    )
    topology = two_tier()
    transport = Transport(env, topology, backend.server, random.Random(0))
    config = SpeedKitConfig(
        sketch_refresh_interval=DELTA,
        segment_personalized=["/product/*"],
        refresh_on_navigation=False,
    )

    def worker(name, seed):
        vault = PiiVault(
            user_id=name, attributes={"tier": "gold", "locale": "de"}
        )
        consent = ConsentManager.all_granted()
        return ServiceWorkerProxy(
            node="client",
            transport=transport,
            cdn=backend.cdn,
            config=config,
            vault=vault,
            consent=consent,
            segments=SegmentResolver(
                SegmentScheme.ecommerce_default(), vault, consent
            ),
            sketch_client=SketchClient(
                env,
                backend.sketch,
                topology,
                "client",
                random.Random(seed),
                refresh_interval=DELTA,
            ),
        )

    checker = DeltaAtomicityChecker(
        backend.server, delta=DELTA + PURGE_LATENCY + 1.0
    )
    return env, backend, worker("alice", 1), worker("bob", 2), checker


def drive(env, generator):
    process = env.process(generator)
    while not process.triggered:
        env.step()
    if not process.ok:
        raise process.value
    return process.value


class TestRandomSchedules:
    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_delta_atomicity_never_violated(self, ops):
        env, backend, alice, bob, checker = build_stack()
        for op, product_id, gap in ops:
            env.run(until=env.now + gap)
            if op == "write":
                backend.server.update(
                    "products",
                    product_id,
                    {"price": round(env.now, 3)},
                    at=env.now,
                )
            elif op == "refresh_a":
                drive(env, alice.sketch_client.fetch_once())
            elif op in ("read_a", "read_b"):
                worker = alice if op == "read_a" else bob
                request = Request.get(URL.parse(f"/product/{product_id}"))
                response = drive(env, worker.fetch(request))
                assert response.status == Status.OK
                checker.record_read(response, env.now)
        checker.assert_delta_atomic()

    @given(
        ops=operations,
        ttl=st.sampled_from([2.0, 15.0, 60.0, 600.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_holds_for_any_ttl(self, ops, ttl):
        env, backend, alice, bob, checker = build_stack()
        backend.server.site.spec_named("product").ttl_hint = ttl
        for op, product_id, gap in ops:
            env.run(until=env.now + gap)
            if op == "write":
                backend.server.update(
                    "products",
                    product_id,
                    {"price": round(env.now, 3)},
                    at=env.now,
                )
            elif op in ("read_a", "read_b"):
                worker = alice if op == "read_a" else bob
                request = Request.get(URL.parse(f"/product/{product_id}"))
                response = drive(env, worker.fetch(request))
                checker.record_read(response, env.now)
        checker.assert_delta_atomic()
