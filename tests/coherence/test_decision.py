"""Tests for the client read decision procedure."""

import pytest

from repro.coherence import ReadDecision, decide
from repro.http import Headers, Response, Status, URL
from repro.sketch import BloomFilter
from repro.sketch.cache_sketch import ClientCacheSketch


def cached(ttl=60.0, etag='"v1"', generated_at=0.0):
    headers = Headers({"Cache-Control": f"max-age={ttl}"})
    if etag is not None:
        headers["ETag"] = etag
    return Response(
        status=Status.OK,
        headers=headers,
        url=URL.of("/r"),
        version=1,
        generated_at=generated_at,
    )


def sketch_with(*keys, generated_at=0.0):
    bf = BloomFilter(bits=1024, hashes=3)
    for key in keys:
        bf.add(key)
    return ClientCacheSketch(filter=bf, generated_at=generated_at)


KEY = "shop.example/r"


class TestDecide:
    def test_no_copy_fetches(self):
        assert decide(KEY, None, sketch_with(), 0.0) is ReadDecision.FETCH

    def test_fresh_unflagged_serves(self):
        decision = decide(KEY, cached(), sketch_with(), now=10.0)
        assert decision is ReadDecision.SERVE_FROM_CACHE

    def test_fresh_but_flagged_revalidates(self):
        decision = decide(KEY, cached(), sketch_with(KEY), now=10.0)
        assert decision is ReadDecision.REVALIDATE

    def test_flagged_without_etag_fetches(self):
        decision = decide(KEY, cached(etag=None), sketch_with(KEY), now=10.0)
        assert decision is ReadDecision.FETCH

    def test_expired_revalidates_regardless_of_sketch(self):
        decision = decide(KEY, cached(ttl=5.0), sketch_with(), now=10.0)
        assert decision is ReadDecision.REVALIDATE

    def test_expired_without_etag_fetches(self):
        decision = decide(
            KEY, cached(ttl=5.0, etag=None), sketch_with(), now=10.0
        )
        assert decision is ReadDecision.FETCH

    def test_no_sketch_serves_fresh_copy(self):
        # Without a sketch the client degrades to a plain browser cache.
        decision = decide(KEY, cached(), None, now=10.0)
        assert decision is ReadDecision.SERVE_FROM_CACHE

    def test_other_keys_in_sketch_do_not_affect_us(self):
        decision = decide(
            KEY, cached(), sketch_with("some/other/key"), now=10.0
        )
        assert decision is ReadDecision.SERVE_FROM_CACHE
