"""Property-style staleness invariants across async configurations.

Randomized (seeded-RNG) write/read/purge schedules are replayed through
the full Speed Kit stack under every asynchronous-propagation
configuration — synchronous remote storage, batched pipelining,
write-behind drains, async PoP replication, and the combination — and
the ground-truth read log is checked for the two invariants the paper's
guarantee rests on:

1. **Bounded staleness.** Every Δ-covered read returns a version that
   was current within the configured bound (the base Δ window widened
   by each config's asynchrony terms — see
   ``SimulationRunner._checker_delta``). Zero violations, always.
2. **Per-client monotonic reads.** A client that has observed version
   ``v`` of a resource never later reads ``v' < v`` — acks may be
   deferred and replicas may race purges, but no schedule may serve a
   client a version it has already seen superseded.

The schedules are deterministic per seed, so failures reproduce.
"""

import random

import pytest

from repro.coherence import version_regressions
from repro.faults import PROFILES, RetryPolicy
from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.storage import BackendSpec
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)

SEEDS = (3, 11)

#: Every asynchronous-propagation configuration under test. All run the
#: full SPEED_KIT scenario; they differ in how far acknowledgement and
#: remote visibility are allowed to drift apart.
CONFIGS = {
    "sync-remote": dict(backend=BackendSpec(kind="remote")),
    "batched-overlap": dict(
        backend=BackendSpec(kind="batched", overlap=True)
    ),
    "write-behind": dict(backend=BackendSpec(kind="write-behind")),
    "replicated": dict(replicate_pops=True, n_regions=3),
    "write-behind-replicated": dict(
        backend=BackendSpec(kind="write-behind"),
        replicate_pops=True,
        n_regions=3,
    ),
    # Fault-injected runs: the guarantee must survive origin outages,
    # flaky links, and failing PoPs — with the bound widened by the
    # stale-if-error grace window and unbounded offline servings
    # excluded from the check.
    "faulted": dict(
        fault_profile=PROFILES["outage"],
        stale_if_error=60.0,
        retry=RetryPolicy(),
    ),
    "chaos-replicated": dict(
        fault_profile=PROFILES["chaos"],
        stale_if_error=60.0,
        retry=RetryPolicy(),
        replicate_pops=True,
        n_regions=3,
    ),
}

_RUNS = {}


def _workload(seed):
    catalog = generate_catalog(
        CatalogConfig(n_products=30), random.Random(seed)
    )
    users = generate_users(
        UserPopulationConfig(n_users=12, consent_fraction=1.0),
        random.Random(seed + 1),
    )
    config = WorkloadConfig(
        duration=600.0,
        session_rate=0.1,
        mean_session_length=4.0,
        think_time_mean=8.0,
        write_rate=0.08,
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(seed + 2)
    )
    return catalog, users, trace


def run_config(config, seed):
    """One (config, seed) replay, cached — returns the live runner."""
    cached = _RUNS.get((config, seed))
    if cached is not None:
        return cached
    catalog, users, trace = _workload(seed)
    spec = ScenarioSpec(
        scenario=Scenario.SPEED_KIT,
        delta=30.0,
        seed=seed,
        **CONFIGS[config],
    )
    runner = SimulationRunner(spec, catalog, users, trace)
    runner.run()
    _RUNS[(config, seed)] = runner
    return runner


@pytest.fixture(params=sorted(CONFIGS))
def config(request):
    return request.param


@pytest.fixture(params=SEEDS, ids=lambda seed: f"seed{seed}")
def runner(request, config):
    return run_config(config, request.param)


class TestStalenessInvariants:
    def test_schedule_exercises_the_checker(self, runner):
        """Guard against vacuous passes: reads were checked and the
        workload actually produced invalidations."""
        assert runner.checker.read_count > 100
        assert runner.metrics.counter("invalidation.processed").value > 0

    def test_bound_is_finite(self, runner):
        assert runner.checker.delta < float("inf")

    def test_zero_delta_violations(self, runner):
        runner.checker.assert_delta_atomic()

    def test_every_read_within_configured_bound(self, runner):
        bound = runner.checker.delta
        for record in runner.checker.records:
            assert record.staleness <= bound, (
                f"{record.resource_key} v{record.version} read at "
                f"{record.read_at:.3f} stale by {record.staleness:.3f} "
                f"> {bound:.3f}"
            )

    def test_reads_are_monotonic_per_client_and_key(self, runner):
        regressions = version_regressions(runner.checker.records)
        assert regressions == [], (
            f"{len(regressions)} version regressions; first: "
            f"{regressions[0]}"
        )

    def test_records_carry_the_client(self, runner):
        assert all(
            record.client is not None for record in runner.checker.records
        )


class TestBoundAccounting:
    """Each asynchrony term widens the checked Δ bound by exactly its
    configured worst-case lag."""

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_write_behind_widens_by_flush_interval(self, seed):
        base = run_config("sync-remote", seed).checker.delta
        wide = run_config("write-behind", seed).checker.delta
        flush = CONFIGS["write-behind"]["backend"].flush_interval
        assert wide == pytest.approx(base + flush)

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_replication_widens_by_propagation_delay(self, seed):
        base = run_config("sync-remote", seed).checker.delta
        wide = run_config("replicated", seed).checker.delta
        assert wide == pytest.approx(
            base + ScenarioSpec(scenario=Scenario.SPEED_KIT).replication_delay
        )

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_stale_if_error_widens_by_grace_window(self, seed):
        base = run_config("sync-remote", seed).checker.delta
        wide = run_config("faulted", seed).checker.delta
        assert wide == pytest.approx(base + 60.0)

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_combined_config_accumulates_both_terms(self, seed):
        base = run_config("sync-remote", seed).checker.delta
        wide = run_config("write-behind-replicated", seed).checker.delta
        spec = ScenarioSpec(scenario=Scenario.SPEED_KIT)
        flush = CONFIGS["write-behind"]["backend"].flush_interval
        assert wide == pytest.approx(
            base + flush + spec.replication_delay
        )


class TestFaultActivity:
    """The faulted configs really injected faults (not a silent no-op):
    the invariants above are checked during and after actual outages."""

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_origin_really_went_down(self, seed):
        runner = run_config("faulted", seed)
        assert runner._faults.total_downtime("origin") > 0

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_failures_were_observed_by_clients(self, seed):
        runner = run_config("faulted", seed)
        degraded = runner.metrics.counter("transport.stale_if_error").value
        assert runner.result.failed_responses + degraded > 0

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_chaos_run_stays_available(self, seed):
        runner = run_config("chaos-replicated", seed)
        assert runner.result.availability() > 0.5


class TestReplicationActivity:
    """The replicated configs really replicate (not a silent no-op)."""

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_replicas_flow_between_pops(self, seed):
        runner = run_config("replicated", seed)
        assert runner.metrics.counter("replication.sent").value > 0
        assert runner.metrics.counter("replication.applied").value > 0

    @pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
    def test_purge_races_are_cancelled_not_applied(self, seed):
        """Whenever the pipeline observed in-flight replicas at purge
        time, the replicator dropped them on arrival."""
        runner = run_config("replicated", seed)
        superseded = runner.metrics.counter(
            "invalidation.replicas_superseded"
        ).value
        dropped = runner.metrics.counter(
            "replication.dropped_purged"
        ).value
        assert dropped >= superseded
