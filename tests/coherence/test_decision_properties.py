"""Property-based tests of the read decision procedure."""

from hypothesis import given
from hypothesis import strategies as st

from repro.coherence import ReadDecision, decide
from repro.http import Headers, Response, Status, URL
from repro.http.freshness import is_fresh_at
from repro.sketch import BloomFilter
from repro.sketch.cache_sketch import ClientCacheSketch

KEY = "shop.example/r"


def cached_response(ttl, generated_at, with_etag):
    headers = Headers({"Cache-Control": f"max-age={ttl}"})
    if with_etag:
        headers["ETag"] = '"v1"'
    return Response(
        status=Status.OK,
        headers=headers,
        url=URL.of("/r"),
        version=1,
        generated_at=generated_at,
    )


def sketch_with_key(flagged):
    bf = BloomFilter(bits=512, hashes=3)
    if flagged:
        bf.add(KEY)
    return ClientCacheSketch(filter=bf, generated_at=0.0)


decision_inputs = st.tuples(
    st.booleans(),  # copy exists
    st.floats(1.0, 500.0),  # ttl
    st.floats(0.0, 1000.0),  # now (generated_at fixed at 0)
    st.booleans(),  # etag present
    st.booleans(),  # flagged in sketch
    st.booleans(),  # sketch available
)


@given(params=decision_inputs)
def test_never_serves_from_cache_when_flagged(params):
    has_copy, ttl, now, etag, flagged, has_sketch = params
    cached = cached_response(ttl, 0.0, etag) if has_copy else None
    sketch = sketch_with_key(flagged) if has_sketch else None
    decision = decide(KEY, cached, sketch, now)
    if has_sketch and flagged:
        assert decision is not ReadDecision.SERVE_FROM_CACHE


@given(params=decision_inputs)
def test_never_serves_expired_copies(params):
    has_copy, ttl, now, etag, flagged, has_sketch = params
    cached = cached_response(ttl, 0.0, etag) if has_copy else None
    sketch = sketch_with_key(flagged) if has_sketch else None
    decision = decide(KEY, cached, sketch, now)
    if decision is ReadDecision.SERVE_FROM_CACHE:
        assert cached is not None
        assert is_fresh_at(cached, now, shared=False)


@given(params=decision_inputs)
def test_revalidate_requires_an_etag(params):
    has_copy, ttl, now, etag, flagged, has_sketch = params
    cached = cached_response(ttl, 0.0, etag) if has_copy else None
    sketch = sketch_with_key(flagged) if has_sketch else None
    decision = decide(KEY, cached, sketch, now)
    if decision is ReadDecision.REVALIDATE:
        assert cached is not None and cached.etag is not None


@given(params=decision_inputs)
def test_no_copy_always_fetches(params):
    _, ttl, now, etag, flagged, has_sketch = params
    sketch = sketch_with_key(flagged) if has_sketch else None
    assert decide(KEY, None, sketch, now) is ReadDecision.FETCH


@given(params=decision_inputs)
def test_decision_is_deterministic(params):
    has_copy, ttl, now, etag, flagged, has_sketch = params
    cached = cached_response(ttl, 0.0, etag) if has_copy else None
    sketch = sketch_with_key(flagged) if has_sketch else None
    first = decide(KEY, cached, sketch, now)
    second = decide(KEY, cached, sketch, now)
    assert first is second
