"""Tests for the Δ-atomicity checker."""

import pytest

from repro.coherence import DeltaAtomicityChecker
from repro.http import Headers, Request, Response, Status, URL
from repro.origin import (
    OriginServer,
    ResourceKind,
    ResourceSpec,
    Site,
)


@pytest.fixture
def server():
    site = Site()
    site.add_route(
        ResourceSpec(
            name="page",
            pattern="/p/{id}",
            kind=ResourceKind.PAGE,
            doc_keys=lambda p: [f"docs/{p['id']}"],
        )
    )
    site.store.put("docs", "1", {"x": 1})
    server = OriginServer(site)
    # Render once so the resource is registered at t=0.
    server.handle(Request.get(URL.parse("/p/1")), now=0.0)
    return server


def response(version, url="/p/1"):
    return Response(
        status=Status.OK,
        headers=Headers({"Cache-Control": "max-age=60"}),
        url=URL.parse(url),
        version=version,
        generated_at=0.0,
    )


class TestChecker:
    def test_current_version_is_never_a_violation(self, server):
        checker = DeltaAtomicityChecker(server, delta=0.0)
        record = checker.record_read(response(1), read_at=5.0)
        assert not record.violation
        assert record.staleness == 0.0

    def test_stale_read_within_delta_is_allowed(self, server):
        checker = DeltaAtomicityChecker(server, delta=10.0)
        server.update("docs", "1", {"x": 2}, at=20.0)
        record = checker.record_read(response(1), read_at=25.0)
        assert record.staleness == pytest.approx(5.0)
        assert not record.violation
        assert checker.violation_count == 0

    def test_stale_read_beyond_delta_is_a_violation(self, server):
        checker = DeltaAtomicityChecker(server, delta=10.0)
        server.update("docs", "1", {"x": 2}, at=20.0)
        record = checker.record_read(response(1), read_at=35.0)
        assert record.staleness == pytest.approx(15.0)
        assert record.violation
        assert checker.violation_count == 1

    def test_boundary_read_exactly_delta_is_allowed(self, server):
        checker = DeltaAtomicityChecker(server, delta=10.0)
        server.update("docs", "1", {"x": 2}, at=20.0)
        record = checker.record_read(response(1), read_at=30.0)
        assert not record.violation

    def test_assert_delta_atomic_raises_on_violation(self, server):
        checker = DeltaAtomicityChecker(server, delta=1.0)
        server.update("docs", "1", {"x": 2}, at=20.0)
        checker.record_read(response(1), read_at=50.0)
        with pytest.raises(AssertionError, match="violated"):
            checker.assert_delta_atomic()

    def test_assert_delta_atomic_passes_when_clean(self, server):
        checker = DeltaAtomicityChecker(server, delta=1.0)
        checker.record_read(response(1), read_at=5.0)
        checker.assert_delta_atomic()

    def test_statistics(self, server):
        checker = DeltaAtomicityChecker(server, delta=100.0)
        server.update("docs", "1", {"x": 2}, at=10.0)
        checker.record_read(response(2), read_at=20.0)  # current
        checker.record_read(response(1), read_at=20.0)  # stale by 10
        assert checker.read_count == 2
        assert checker.stale_read_fraction() == 0.5
        assert checker.max_staleness() == pytest.approx(10.0)

    def test_empty_checker_statistics(self, server):
        checker = DeltaAtomicityChecker(server, delta=1.0)
        assert checker.stale_read_fraction() == 0.0
        assert checker.max_staleness() == 0.0

    def test_metadata_required(self, server):
        checker = DeltaAtomicityChecker(server, delta=1.0)
        with pytest.raises(ValueError):
            checker.record_read(
                Response(status=Status.OK), read_at=0.0
            )

    def test_negative_delta_rejected(self, server):
        with pytest.raises(ValueError):
            DeltaAtomicityChecker(server, delta=-1.0)

    def test_metrics_recorded(self, server):
        checker = DeltaAtomicityChecker(server, delta=5.0)
        server.update("docs", "1", {"x": 2}, at=10.0)
        checker.record_read(response(1), read_at=30.0)
        assert checker.metrics.counter("coherence.violations").value == 1
        assert checker.metrics.counter("coherence.stale_reads").value == 1
