"""Property-style multi-key consistency invariants across configs.

Randomized (seeded-RNG) multi-key read schedules replay through the
full Speed Kit stack under every asynchronous-propagation
configuration of the staleness suite — synchronous remote storage,
batched pipelining, write-behind drains, async PoP replication, fault
injection, combinations, and the sharded parallel kernel — at each
rung of the consistency ladder. Ground truth must confirm:

1. **No fractured reads** at ``snapshot`` and above: the returned
   versions of every transaction coexisted at some origin instant.
2. **Origin-order agreement** at ``serializable``: the validation
   instant sees exactly the returned versions.
3. **No silent downgrades** anywhere: achieving less than requested
   always carries the degradation mark.

Plus the metamorphic ladder-containment checks: a transaction valid
at a stronger rung is valid at every weaker one — serializable results
re-judged as snapshots stay fracture-free, and snapshot reads ingested
by the per-key Δ checker stay within the Δ bound.

The schedules are deterministic per seed, so failures reproduce.
"""

import random

import pytest

from repro.coherence.txn import TxnConsistencyChecker
from repro.faults import PROFILES, RetryPolicy
from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.storage import BackendSpec
from repro.txn import ConsistencyLevel
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)

pytestmark = pytest.mark.txn

SEEDS = (3, 11)

LEVELS = ("delta", "snapshot", "serializable")

CONFIGS = {
    "sync-remote": dict(backend=BackendSpec(kind="remote")),
    "batched-overlap": dict(
        backend=BackendSpec(kind="batched", overlap=True)
    ),
    "write-behind": dict(backend=BackendSpec(kind="write-behind")),
    "replicated": dict(replicate_pops=True, n_regions=3),
    "faulted": dict(
        fault_profile=PROFILES["outage"],
        stale_if_error=60.0,
        retry=RetryPolicy(),
    ),
    "chaos-replicated": dict(
        fault_profile=PROFILES["chaos"],
        stale_if_error=60.0,
        retry=RetryPolicy(),
        replicate_pops=True,
        n_regions=3,
    ),
}

_RUNS = {}


def _workload(seed):
    catalog = generate_catalog(
        CatalogConfig(n_products=25), random.Random(seed)
    )
    users = generate_users(
        UserPopulationConfig(n_users=10, consent_fraction=1.0),
        random.Random(seed + 1),
    )
    config = WorkloadConfig(
        duration=480.0,
        session_rate=0.1,
        mean_session_length=4.0,
        think_time_mean=8.0,
        write_rate=0.1,
        txn_mix=0.4,
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(seed + 2)
    )
    return catalog, users, trace


def _spec(config, level, seed):
    return ScenarioSpec(
        scenario=Scenario.SPEED_KIT,
        delta=30.0,
        seed=seed,
        consistency=level,
        **CONFIGS[config],
    )


def run_config(config, level, seed):
    """One (config, level, seed) replay, cached — the live runner."""
    cached = _RUNS.get((config, level, seed))
    if cached is not None:
        return cached
    catalog, users, trace = _workload(seed)
    runner = SimulationRunner(
        _spec(config, level, seed), catalog, users, trace
    )
    runner.run()
    _RUNS[(config, level, seed)] = runner
    return runner


@pytest.fixture(params=sorted(CONFIGS))
def config(request):
    return request.param


@pytest.fixture(params=LEVELS)
def level(request):
    return request.param


@pytest.fixture(params=SEEDS, ids=lambda seed: f"seed{seed}")
def runner(request, config, level):
    return run_config(config, level, request.param)


class TestLadderInvariants:
    def test_schedule_exercises_the_checker(self, runner):
        """Guard against vacuous passes: transactions ran, and the
        workload churned versions underneath them."""
        assert runner.txn_checker.txn_count > 30
        assert runner.metrics.counter("invalidation.processed").value > 0

    def test_no_fractured_reads_at_achieved_level(self, runner):
        runner.txn_checker.assert_txn_consistent()

    def test_zero_counts_surface_in_the_result(self, runner):
        assert runner.result.txn_fractured_reads == 0
        assert runner.result.txn_serialization_violations == 0
        assert runner.result.txn_silent_downgrades == 0

    def test_per_key_delta_suite_still_clean(self, runner):
        """Adding transactions must not disturb the Δ guarantee the
        rest of the suite rests on."""
        runner.checker.assert_delta_atomic()

    def test_serializable_txns_agree_with_origin_order(self, runner):
        """Re-derive the serializable verdict from ground truth: every
        validated transaction's versions are exactly the ones current
        at its validation instant."""
        versions = runner.server.versions
        for record in runner.txn_checker.records:
            if record.achieved is not ConsistencyLevel.SERIALIZABLE:
                continue
            if record.degraded or record.validated_at is None:
                continue
            for version_key, version, _read_at in record.reads:
                assert (
                    versions.version_at(version_key, record.validated_at)
                    == version
                )


class TestMetamorphicLadder:
    """Containment: valid at a stronger rung → valid at every weaker
    one. Re-judge each run's records one rung down and require the
    weaker checker to agree there is nothing wrong."""

    def test_serializable_records_are_valid_snapshots(self, config):
        for seed in SEEDS:
            runner = run_config(config, "serializable", seed)
            rejudged = TxnConsistencyChecker(runner.server)
            for record in runner.txn_checker.records:
                if record.achieved < ConsistencyLevel.SERIALIZABLE:
                    continue
                rejudged.record_txn(
                    requested=ConsistencyLevel.SNAPSHOT,
                    achieved=ConsistencyLevel.SNAPSHOT,
                    degraded=False,
                    reads=record.reads,
                    validated_at=None,
                    finished_at=record.finished_at,
                    client=record.client,
                )
            assert rejudged.fractured_count == 0

    def test_snapshot_records_have_delta_valid_reads(self, config):
        """Every read of every snapshot-certified transaction also
        appears in the per-key Δ log — and that log is violation-free
        (checked above) — so snapshot ⊆ valid per-key-Δ."""
        for seed in SEEDS:
            runner = run_config(config, "snapshot", seed)
            logged = {
                (record.client, record.resource_key, record.version)
                for record in runner.checker.records
            }
            for record in runner.txn_checker.records:
                if record.achieved < ConsistencyLevel.SNAPSHOT:
                    continue
                for version_key, version, _read_at in record.reads:
                    assert (
                        record.client,
                        version_key,
                        version,
                    ) in logged

    def test_requested_levels_are_honored_or_marked(self, runner):
        for record in runner.txn_checker.records:
            assert record.achieved >= record.requested or record.degraded


class TestShardedKernel:
    """The sharded parallel kernel preserves the ladder verdicts under
    the documented merge contract: workload-determined counts (one
    transaction per trace event) are exactly equal, and every
    invariant verdict is identical — zero violations on both sides.
    Cache-state-dependent counts (refetches, aborts) legitimately
    drift, because a shard's edge caches are only warmed by its own
    users; they must still merge as plain sums and stay in-family."""

    @pytest.fixture(params=LEVELS)
    def pair(self, request):
        from repro.parallel import ShardedSimulationRunner

        level = request.param
        seed = SEEDS[0]
        catalog, users, trace = _workload(seed)
        spec = _spec("sync-remote", level, seed)
        serial = run_config("sync-remote", level, seed).result
        sharded = ShardedSimulationRunner(
            spec, catalog, users, trace, n_shards=3, workers=1
        ).run()
        return serial, sharded

    def test_workload_counts_are_exact(self, pair):
        serial, sharded = pair
        assert sharded.txns == serial.txns
        assert sharded.txns > 30

    def test_verdicts_are_identical_and_clean(self, pair):
        serial, sharded = pair
        for result in (serial, sharded):
            assert result.txn_fractured_reads == 0
            assert result.txn_serialization_violations == 0
            assert result.txn_silent_downgrades == 0

    def test_behavioral_counts_stay_in_family(self, pair):
        """Refetch/abort totals are cache-state-dependent, but every
        certified transaction still lands: sums merge without loss and
        sit within the serial run's regime (same order of magnitude,
        bounded by the retry budget)."""
        serial, sharded = pair
        limit = _spec("sync-remote", "snapshot", SEEDS[0]).txn_retry_limit
        assert sharded.txn_validation_retries <= sharded.txns * limit
        assert sharded.txn_aborts <= sharded.txns * limit
        if serial.txn_refetches == 0:
            assert sharded.txn_refetches == 0
        else:
            ratio = sharded.txn_refetches / serial.txn_refetches
            assert 0.5 <= ratio <= 2.0
