"""Tests for client-side sketch management."""

import random

import pytest

from repro.coherence import SketchClient
from repro.sim import Environment
from repro.simnet.topology import two_tier
from repro.sketch import ServerCacheSketch


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def server_sketch():
    sketch = ServerCacheSketch(capacity=100)
    sketch.report_read("k", expires_at=1000.0, now=0.0)
    return sketch


def make_client(env, server_sketch, refresh_interval=60.0):
    return SketchClient(
        env,
        server_sketch,
        two_tier(),
        client_node="client",
        rng=random.Random(0),
        refresh_interval=refresh_interval,
    )


def run(env, generator):
    process = env.process(generator)
    env.run()
    return process.value


class TestFetching:
    def test_initial_state(self, env, server_sketch):
        client = make_client(env, server_sketch)
        assert client.current is None
        assert client.age() is None
        assert not client.is_usable()
        assert client.usable_sketch() is None

    def test_fetch_once_costs_a_round_trip(self, env, server_sketch):
        client = make_client(env, server_sketch)
        run(env, client.fetch_once())
        # two_tier client-origin one-way is 0.05.
        assert env.now == pytest.approx(0.10)
        assert client.stats.fetches == 1
        assert client.stats.bytes_transferred > 0

    def test_fetched_sketch_reflects_server_state(self, env, server_sketch):
        client = make_client(env, server_sketch)
        server_sketch.report_write("k", now=0.0)
        run(env, client.fetch_once())
        assert client.current.contains("k")

    def test_snapshot_is_taken_at_server_arrival(self, env, server_sketch):
        client = make_client(env, server_sketch)
        run(env, client.fetch_once())
        # Write after the fetch is not visible.
        server_sketch.report_write("k", now=env.now)
        assert not client.current.contains("k")

    def test_ensure_fresh_skips_recent_sketch(self, env, server_sketch):
        client = make_client(env, server_sketch)
        run(env, client.fetch_once())
        run(env, client.ensure_fresh())
        assert client.stats.fetches == 1

    def test_ensure_fresh_refetches_old_sketch(self, env, server_sketch):
        client = make_client(env, server_sketch, refresh_interval=10.0)
        run(env, client.fetch_once())
        env.run(until=env.now + 50.0)
        run(env, client.ensure_fresh())
        assert client.stats.fetches == 2

    def test_usability_window_is_refresh_interval(self, env, server_sketch):
        client = make_client(env, server_sketch, refresh_interval=10.0)
        run(env, client.fetch_once())
        fetched_at = client.current.generated_at
        assert client.is_usable(now=fetched_at + 9.0)
        assert not client.is_usable(now=fetched_at + 10.5)

    def test_refresh_interval_validation(self, env, server_sketch):
        with pytest.raises(ValueError):
            make_client(env, server_sketch, refresh_interval=0.0)


class TestPeriodicRefresh:
    def test_background_loop_fetches_every_interval(self, env, server_sketch):
        client = make_client(env, server_sketch, refresh_interval=10.0)
        client.start_periodic_refresh()
        env.run(until=35.0)
        # Fetches at ~0, ~10, ~20, ~30 (plus round-trip offsets).
        assert client.stats.fetches == 4

    def test_start_is_idempotent(self, env, server_sketch):
        client = make_client(env, server_sketch, refresh_interval=10.0)
        client.start_periodic_refresh()
        client.start_periodic_refresh()
        env.run(until=5.0)
        assert client.stats.fetches == 1

    def test_stop_halts_fetching(self, env, server_sketch):
        client = make_client(env, server_sketch, refresh_interval=10.0)
        client.start_periodic_refresh()
        env.run(until=15.0)
        client.stop_periodic_refresh()
        fetches = client.stats.fetches
        env.run(until=100.0)
        assert client.stats.fetches == fetches

    def test_sketch_stays_usable_under_periodic_refresh(
        self, env, server_sketch
    ):
        client = make_client(env, server_sketch, refresh_interval=10.0)
        client.start_periodic_refresh()
        env.run(until=95.0)
        assert client.is_usable()
