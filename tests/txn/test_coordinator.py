"""Coordinator behavior across the ladder, on full-stack replays."""

import pytest

from repro.txn import ConsistencyLevel

from tests.txn.conftest import level_runner

pytestmark = pytest.mark.txn


class TestAccounting:
    def test_workload_actually_runs_transactions(self, runner):
        assert runner.result.txns > 50
        assert runner.txn_checker.txn_count == runner.result.txns

    def test_per_level_latency_sketch_is_populated(self, runner, level):
        sketch = runner.metrics.sketch(f"txn.plt.{level}")
        assert sketch.count == runner.result.txns

    def test_level_counter_matches_requests(self, runner, level):
        assert (
            runner.metrics.counter(f"txn.level.{level}").value
            == runner.result.txns
        )

    def test_requested_level_is_recorded(self, runner, level):
        want = ConsistencyLevel.parse(level)
        assert all(
            record.requested is want
            for record in runner.txn_checker.records
        )

    def test_delta_level_never_refetches_or_validates(self):
        runner = level_runner("delta")
        assert runner.result.txn_refetches == 0
        assert runner.result.txn_aborts == 0
        assert runner.server.txn_validations == 0

    def test_snapshot_repairs_cut_violations_by_refetching(self):
        """The churny workload fractures some cuts; the coordinator
        repairs them from the origin rather than degrading."""
        runner = level_runner("snapshot")
        assert runner.result.txn_refetches > 0
        assert runner.server.txn_validations == 0

    def test_serializable_validates_every_transaction(self):
        runner = level_runner("serializable")
        assert runner.server.txn_validations >= runner.result.txns

    def test_abort_accounting_is_consistent(self):
        runner = level_runner("serializable")
        sketch = runner.metrics.sketch("txn.aborts.per_txn")
        assert sketch.count == runner.result.txns
        assert (
            runner.metrics.counter("txn.aborts").value
            == runner.result.txn_aborts
        )

    def test_retries_never_exceed_the_budget(self, runner):
        limit = runner.spec.txn_retry_limit
        assert (
            runner.result.txn_validation_retries
            <= runner.result.txns * limit
        )


class TestLadderInvariants:
    def test_no_fractured_reads_at_or_above_snapshot(self, runner):
        runner.txn_checker.assert_txn_consistent()

    def test_degradations_are_always_marked(self, runner):
        assert runner.result.txn_silent_downgrades == 0
        for record in runner.txn_checker.records:
            if record.achieved < record.requested:
                assert record.degraded

    def test_txn_reads_respect_the_delta_bound_too(self, runner):
        """Snapshot/serializable reads are also valid Δ reads: the
        per-key checker ingests them and stays clean."""
        runner.checker.assert_delta_atomic()


class TestMonotonicFloor:
    def test_no_client_ever_sees_a_version_regress(self, runner):
        """Once a transaction has *returned* version v of a key to a
        client, no later read of that client may observe v' < v."""
        reads = []
        for record in runner.txn_checker.records:
            for version_key, version, read_at in record.reads:
                reads.append(
                    (
                        record.client,
                        version_key,
                        read_at,
                        version,
                        record.finished_at,
                    )
                )
        regressions = []
        highest = {}
        for client, key, read_at, version, finished_at in sorted(
            reads, key=lambda read: read[2]
        ):
            prev = highest.get((client, key))
            if prev is not None:
                prev_version, prev_finished = prev
                if version < prev_version and prev_finished <= read_at:
                    regressions.append(
                        (client, key, prev_version, version)
                    )
            if prev is None or version > prev[0]:
                highest[(client, key)] = (version, finished_at)
        assert regressions == [], (
            f"{len(regressions)} monotonic-read regressions; "
            f"first: {regressions[0]}"
        )


class TestResultShape:
    def test_merged_result_serializes_txn_fields(self, runner):
        record = runner.result.to_dict()
        for field in (
            "txns",
            "txn_aborts",
            "txn_validation_retries",
            "txn_refetches",
            "txn_degraded",
            "txn_erase_conflicts",
            "txn_fractured_reads",
            "txn_serialization_violations",
            "txn_silent_downgrades",
            "txn_buffers_scrubbed",
        ):
            assert field in record

    def test_reads_recorded_as_ok_only(self, runner):
        """The checker only ever sees certified OK reads."""
        assert all(
            version is not None and version >= 1
            for record in runner.txn_checker.records
            for _key, version, _at in record.reads
        )

    def test_level_counters_sum_to_txns(self, runner, level):
        total = sum(
            runner.metrics.counter(f"txn.level.{name}").value
            for name in ("delta", "snapshot", "serializable")
        )
        assert total == runner.result.txns
