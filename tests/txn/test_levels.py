"""The consistency ladder's ordering and parsing."""

import pytest

from repro.txn import ConsistencyLevel

pytestmark = pytest.mark.txn


class TestOrdering:
    def test_ladder_is_totally_ordered(self):
        assert (
            ConsistencyLevel.DELTA
            < ConsistencyLevel.SNAPSHOT
            < ConsistencyLevel.SERIALIZABLE
        )

    def test_rank_matches_order(self):
        ranks = [level.rank for level in ConsistencyLevel]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)

    def test_ge_le_are_consistent(self):
        for a in ConsistencyLevel:
            for b in ConsistencyLevel:
                assert (a >= b) == (not a < b)
                assert (a <= b) == (not a > b)

    def test_comparison_with_non_level_is_rejected(self):
        with pytest.raises(TypeError):
            ConsistencyLevel.DELTA < object()  # noqa: B015


class TestParsing:
    def test_parse_accepts_strings_case_insensitively(self):
        assert (
            ConsistencyLevel.parse("SERIALIZABLE")
            is ConsistencyLevel.SERIALIZABLE
        )
        assert ConsistencyLevel.parse("delta") is ConsistencyLevel.DELTA

    def test_parse_is_idempotent_on_levels(self):
        for level in ConsistencyLevel:
            assert ConsistencyLevel.parse(level) is level

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            ConsistencyLevel.parse("linearizable")


class TestDegradation:
    def test_one_below_walks_down_the_ladder(self):
        assert (
            ConsistencyLevel.SERIALIZABLE.one_below()
            is ConsistencyLevel.SNAPSHOT
        )
        assert (
            ConsistencyLevel.SNAPSHOT.one_below() is ConsistencyLevel.DELTA
        )

    def test_delta_is_the_floor(self):
        assert ConsistencyLevel.DELTA.one_below() is ConsistencyLevel.DELTA
