"""Shared fixtures for the multi-key transaction suite.

One small deterministic workload with a transaction mix, replayed
through the full Speed Kit stack once per consistency level. Runs are
cached so the unit, fault-path, and accounting tests all interrogate
the same replays. ``drive`` resumes a finished runner's event loop to
execute hand-built transactions against its live stack — the erase-race
and degradation tests use it to control interleavings exactly.
"""

import random

import pytest

from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.workload import (
    CatalogConfig,
    UserPopulationConfig,
    WorkloadConfig,
    WorkloadGenerator,
    generate_catalog,
    generate_users,
)

SEED = 13

LEVELS = ("delta", "snapshot", "serializable")

_RUNNERS = {}


def txn_workload(seed=SEED, txn_mix=0.4, duration=600.0):
    catalog = generate_catalog(
        CatalogConfig(n_products=25), random.Random(seed)
    )
    users = generate_users(
        UserPopulationConfig(n_users=10, consent_fraction=1.0),
        random.Random(seed + 1),
    )
    config = WorkloadConfig(
        duration=duration,
        session_rate=0.1,
        mean_session_length=4.0,
        think_time_mean=8.0,
        write_rate=0.1,
        txn_mix=txn_mix,
    )
    trace = WorkloadGenerator(catalog, users, config).generate(
        random.Random(seed + 2)
    )
    return catalog, users, trace


def level_runner(level, seed=SEED, **spec_kwargs):
    """The (cached) live runner of one txn replay at ``level``."""
    key = (
        level,
        seed,
        tuple(sorted((k, repr(v)) for k, v in spec_kwargs.items())),
    )
    cached = _RUNNERS.get(key)
    if cached is None:
        catalog, users, trace = txn_workload(seed)
        spec = ScenarioSpec(
            scenario=Scenario.SPEED_KIT,
            delta=30.0,
            seed=seed,
            consistency=level,
            **spec_kwargs,
        )
        cached = SimulationRunner(spec, catalog, users, trace)
        cached.run()
        _RUNNERS[key] = cached
    return cached


def drive(runner, generator_fn):
    """Run one generator process on a finished runner's sim kernel."""
    out = {}

    def wrapper():
        out["value"] = yield from generator_fn()

    runner.env.process(wrapper())
    runner.env.run()
    return out["value"]


@pytest.fixture(params=LEVELS)
def level(request):
    return request.param


@pytest.fixture
def runner(level):
    return level_runner(level)
