"""Erase vs. in-flight validation: scrubbed bytes never resurface.

A serializable transaction buffers its reads while the validation
round trip is outstanding. An erase landing in that window walks the
transaction registry like any other tier: matching buffers are dropped
and poisoned, the coordinator re-fetches the poisoned keys (observing
the post-erase origin), and the erasure report counts the scrubbed
buffers. These tests attack the race both through the public
``ErasureCoordinator.erase`` walk (adversarially injected user-marked
buffers) and through a mid-flight scrub injected between a
transaction's reads and its validation verdict.
"""

import pytest

from repro.http import Headers, Response, Status, URL
from repro.txn import ConsistencyLevel

from tests.txn.conftest import SEED, level_runner

pytestmark = pytest.mark.txn


def _tainted_response(user_id):
    return Response(
        status=Status.OK,
        headers=Headers({"Cache-Control": "no-store"}),
        body={"owner": user_id, "items": [1, 2]},
        url=URL.parse(f"/api/blocks/cart?u={user_id}"),
        generated_at=0.0,
        served_by="origin",
    )


class _MatchEverything:
    """Adversarial matcher: an erase that claims every buffered key."""

    def matches_key(self, key):
        return True

    def matches_value(self, value):
        return True


class TestErasureWalk:
    def test_erase_scrubs_injected_txn_buffers(self):
        runner = level_runner("delta", seed=SEED + 4)
        registry = runner.txn_registry
        context = registry.begin("u1")
        registry.buffer(context, "carts/u1", _tainted_response("u1"))
        registry.buffer(context, "products/5", _tainted_response("u1"))

        report = runner.gdpr.erase("u1")

        assert report.txn_buffers_scrubbed == 2
        assert context.poisoned == {"carts/u1", "products/5"}
        assert context.buffered == {}
        assert "txn-buffers" not in report.residuals
        registry.finish(context)

    def test_report_serializes_the_scrub_count(self):
        runner = level_runner("delta", seed=SEED + 4)
        context = runner.txn_registry.begin("u2")
        runner.txn_registry.buffer(
            context, "carts/u2", _tainted_response("u2")
        )
        report = runner.gdpr.erase("u2")
        assert report.to_dict()["txn_buffers_scrubbed"] == 1
        assert report.entries_removed >= 1
        runner.txn_registry.finish(context)

    def test_erase_without_in_flight_txns_reports_zero(self):
        runner = level_runner("delta", seed=SEED + 4)
        report = runner.gdpr.erase("u3")
        assert report.txn_buffers_scrubbed == 0

    def test_other_users_buffers_survive(self):
        runner = level_runner("delta", seed=SEED + 4)
        registry = runner.txn_registry
        victim = registry.begin("u5")
        bystander = registry.begin("u6")
        registry.buffer(victim, "carts/u5", _tainted_response("u5"))
        registry.buffer(bystander, "carts/u6", _tainted_response("u6"))
        report = runner.gdpr.erase("u5")
        assert report.txn_buffers_scrubbed == 1
        assert bystander.poisoned == set()
        assert "carts/u6" in bystander.buffered
        registry.finish(victim)
        registry.finish(bystander)


class TestMidFlightRace:
    @pytest.fixture(scope="class")
    def raced(self):
        """One serializable txn whose every buffer is scrubbed while
        its validation verdict is in flight."""
        runner = level_runner("serializable", seed=SEED + 5)
        from repro.workload.trace import TxnRead

        event = next(
            e for e in runner.trace.events if isinstance(e, TxnRead)
        )
        user = runner.users.by_id(event.user_id)
        coordinator = runner._txn_coordinator_for(user)
        urls = [
            URL.parse(f"/api/products/{product_id}")
            for product_id in event.product_ids
        ]
        registry = runner.txn_registry
        captured = {}

        def txn():
            result = yield from coordinator.execute(
                urls, ConsistencyLevel.SERIALIZABLE
            )
            captured["result"] = result

        def eraser():
            while not any(
                context.buffered
                for context in registry._active.values()
            ):
                yield runner.env.timeout(0.001)
            captured["buffered"] = [
                response
                for context in registry._active.values()
                for response in context.buffered.values()
            ]
            registry.scrub_matching(_MatchEverything())

        runner.env.process(txn())
        runner.env.process(eraser())
        runner.env.run()
        return captured

    def test_race_flags_the_erase_conflict(self, raced):
        assert raced["result"].erase_conflict

    def test_scrubbed_buffers_are_never_returned(self, raced):
        """The resurrection bug: none of the buffered (scrubbed)
        response objects may appear in the transaction's result."""
        scrubbed = {id(response) for response in raced["buffered"]}
        returned = {
            id(read.response) for read in raced["result"].reads
        }
        assert scrubbed
        assert scrubbed.isdisjoint(returned)

    def test_poisoned_keys_were_refetched_from_origin(self, raced):
        result = raced["result"]
        ok = [
            read
            for read in result.reads
            if read.response.status == Status.OK
        ]
        assert ok
        assert all(read.refetched for read in ok)
        assert result.refetches >= len(ok)

    def test_race_still_meets_or_marks_the_level(self, raced):
        result = raced["result"]
        assert not result.silently_downgraded
        if result.achieved is ConsistencyLevel.SERIALIZABLE:
            assert result.validated_at is not None
