"""The in-flight transaction registry and its erasure hooks."""

import pytest

from repro.gdpr.matching import UserDataMatcher
from repro.http import Headers, Response, Status, URL
from repro.txn import TxnRegistry

pytestmark = pytest.mark.txn


def _response(body):
    return Response(
        status=Status.OK,
        headers=Headers({"Cache-Control": "no-store"}),
        body=body,
        url=URL.parse("/api/products/1"),
        generated_at=0.0,
        served_by="origin",
    )


class TestLifecycle:
    def test_begin_buffer_finish(self):
        registry = TxnRegistry()
        context = registry.begin("u1")
        registry.buffer(context, "products/1", _response("shared"))
        assert registry.in_flight == 1
        registry.finish(context)
        assert registry.in_flight == 0
        assert context.buffered == {}

    def test_contexts_get_distinct_ids(self):
        registry = TxnRegistry()
        a, b = registry.begin("u1"), registry.begin("u2")
        assert a.txn_id != b.txn_id
        assert registry.in_flight == 2

    def test_start_epoch_snapshots_the_erase_counter(self):
        registry = TxnRegistry()
        before = registry.begin("u1")
        registry.scrub_matching(UserDataMatcher("u9"))
        after = registry.begin("u1")
        assert before.start_epoch == 0
        assert after.start_epoch == 1


class TestScrubbing:
    def test_user_keyed_buffer_is_scrubbed_and_poisoned(self):
        registry = TxnRegistry()
        context = registry.begin("u1")
        registry.buffer(context, "carts/u1", _response("shared"))
        registry.buffer(context, "products/2", _response("shared"))
        scrubbed = registry.scrub_matching(UserDataMatcher("u1"))
        assert scrubbed == 1
        assert context.poisoned == {"carts/u1"}
        assert list(context.buffered) == ["products/2"]
        assert registry.buffers_scrubbed == 1

    def test_user_valued_buffer_is_scrubbed(self):
        """Adversarial injection: identity hidden in the response body,
        not the key — the value walk must still find it."""
        registry = TxnRegistry()
        context = registry.begin("u1")
        registry.buffer(
            context, "products/7", _response({"viewer": "u1", "price": 3})
        )
        assert registry.scrub_matching(UserDataMatcher("u1")) == 1
        assert context.poisoned == {"products/7"}

    def test_token_boundaries_protect_other_users(self):
        """Erasing u1 must not take u12's buffered reads with it."""
        registry = TxnRegistry()
        context = registry.begin("u12")
        registry.buffer(context, "carts/u12", _response("u12 stuff"))
        assert registry.scrub_matching(UserDataMatcher("u1")) == 0
        assert context.poisoned == set()

    def test_every_scrub_bumps_the_epoch_even_when_empty(self):
        """A racing erase is detectable even when it hit no buffers."""
        registry = TxnRegistry()
        registry.scrub_matching(UserDataMatcher("u1"))
        registry.scrub_matching(UserDataMatcher("u2"))
        assert registry.erase_epoch == 2

    def test_scrub_spans_all_in_flight_transactions(self):
        registry = TxnRegistry()
        first, second = registry.begin("a"), registry.begin("b")
        registry.buffer(first, "carts/u5", _response("x"))
        registry.buffer(second, "orders/u5", _response("y"))
        assert registry.scrub_matching(UserDataMatcher("u5")) == 2
        assert first.poisoned and second.poisoned


class TestResiduals:
    def test_residual_view_sees_surviving_matches(self):
        registry = TxnRegistry()
        context = registry.begin("u1")
        registry.buffer(context, "carts/u1", _response("shared"))
        assert registry.buffers_matching(UserDataMatcher("u1")) == [
            "carts/u1"
        ]

    def test_residuals_empty_after_scrub(self):
        registry = TxnRegistry()
        context = registry.begin("u1")
        registry.buffer(context, "carts/u1", _response("shared"))
        registry.buffer(context, "products/3", _response({"viewer": "u1"}))
        registry.scrub_matching(UserDataMatcher("u1"))
        assert registry.buffers_matching(UserDataMatcher("u1")) == []

    def test_finished_transactions_leave_no_residuals(self):
        registry = TxnRegistry()
        context = registry.begin("u1")
        registry.buffer(context, "carts/u1", _response("shared"))
        registry.finish(context)
        assert registry.buffers_matching(UserDataMatcher("u1")) == []
