"""The origin's optimistic validation RPC and its transport client."""

import json

import pytest

from repro.http import Headers, Method, Request, Status, URL
from repro.origin.server import TXN_VALIDATE_PATH

from tests.txn.conftest import drive, level_runner

pytestmark = pytest.mark.txn


def _validate(server, keys, now):
    request = Request(
        method=Method.POST,
        url=URL.parse(TXN_VALIDATE_PATH),
        headers=Headers({"Cache-Control": "no-store"}),
        body={"keys": keys},
    )
    return server.handle(request, now=now)


def _some_versioned_key(server):
    for key in server.versions.known_resources():
        if key.startswith("/api/products/"):
            return key
    return server.versions.known_resources()[0]


class TestOriginEndpoint:
    def test_current_versions_validate(self):
        server = level_runner("delta").server
        key = _some_versioned_key(server)
        response = _validate(
            server, {key: server.versions.current(key)}, now=1000.0
        )
        assert response.status == Status.OK
        verdict = json.loads(response.body)
        assert verdict["mismatched"] == []
        assert verdict["validated_at"] == 1000.0

    def test_stale_version_is_mismatched(self):
        server = level_runner("delta").server
        key = _some_versioned_key(server)
        live = server.versions.current(key)
        verdict = json.loads(
            _validate(server, {key: live + 1}, now=1000.0).body
        )
        assert verdict["mismatched"] == [key]
        assert verdict["current"][key] == live

    def test_unknown_key_is_mismatched_not_an_error(self):
        server = level_runner("delta").server
        response = _validate(server, {"/api/products/nope": 1}, now=5.0)
        assert response.status == Status.OK
        verdict = json.loads(response.body)
        assert verdict["mismatched"] == ["/api/products/nope"]
        assert verdict["current"]["/api/products/nope"] is None

    def test_reply_is_uncacheable(self):
        server = level_runner("delta").server
        response = _validate(server, {}, now=0.0)
        assert response.headers.get("Cache-Control") == "no-store"

    def test_malformed_body_validates_nothing(self):
        server = level_runner("delta").server
        request = Request(
            method=Method.POST,
            url=URL.parse(TXN_VALIDATE_PATH),
            headers=Headers({}),
            body="not-a-mapping",
        )
        verdict = json.loads(server.handle(request, now=0.0).body)
        assert verdict["mismatched"] == []
        assert verdict["current"] == {}

    def test_validations_are_counted(self):
        runner = level_runner("serializable")
        assert runner.server.txn_validations > 0


class TestTransportClient:
    def test_verdict_round_trips_through_the_transport(self):
        runner = level_runner("delta")
        server = runner.server
        key = _some_versioned_key(server)
        vector = {key: server.versions.current(key)}

        verdict = drive(
            runner,
            lambda: runner.transport.validate_txn("u0", vector),
        )
        assert verdict is not None
        assert verdict["mismatched"] == []
        assert verdict["validated_at"] == pytest.approx(
            runner.env.now, abs=1.0
        )

    def test_mismatch_survives_the_wire(self):
        runner = level_runner("delta")
        server = runner.server
        key = _some_versioned_key(server)
        vector = {key: server.versions.current(key) + 7}
        verdict = drive(
            runner,
            lambda: runner.transport.validate_txn("u0", vector),
        )
        assert verdict["mismatched"] == [key]

    def test_validation_rpc_costs_simulated_time(self):
        runner = level_runner("delta")
        server = runner.server
        key = _some_versioned_key(server)
        before = runner.env.now

        def exchange():
            result = yield from runner.transport.validate_txn(
                "u0", {key: server.versions.current(key)}
            )
            return result

        drive(runner, exchange)
        assert runner.env.now > before
