"""Abort/retry fault paths: the degradation contract under failures.

A serializable transaction that cannot reach the origin's validation
endpoint (outage, open breaker, exhausted retry budget) must degrade
to the bounded-stale snapshot/delta rungs — and must *say so*: every
response of a degraded transaction carries ``X-Txn-Degraded`` and the
result is flagged. Serving below the requested floor without the mark
is the broken-promise bug class this file hunts.
"""

import pytest

from repro.faults import PROFILES, RetryPolicy
from repro.harness import Scenario, ScenarioSpec, SimulationRunner
from repro.http.messages import Status
from repro.http.url import URL
from repro.txn import DEGRADED_HEADER, ConsistencyLevel
from repro.workload.trace import TxnRead

from tests.txn.conftest import SEED, drive, level_runner, txn_workload

pytestmark = pytest.mark.txn


@pytest.fixture(scope="module", params=["outage", "chaos"])
def faulted_runner(request):
    return level_runner(
        "serializable",
        fault_profile=PROFILES[request.param],
        stale_if_error=60.0,
        retry=RetryPolicy(),
    )


class TestFaultedReplays:
    def test_faults_really_fired(self, faulted_runner):
        assert faulted_runner._faults.total_downtime("origin") > 0

    def test_degradations_happen_and_are_marked(self, faulted_runner):
        """Outage windows overlap some validations; those transactions
        degrade — explicitly, never silently."""
        assert faulted_runner.result.txn_silent_downgrades == 0
        for record in faulted_runner.txn_checker.records:
            if record.achieved < record.requested:
                assert record.degraded

    def test_no_invariant_violations_under_faults(self, faulted_runner):
        faulted_runner.txn_checker.assert_txn_consistent()

    def test_degraded_count_matches_checker(self, faulted_runner):
        marked = sum(
            1
            for record in faulted_runner.txn_checker.records
            if record.degraded
        )
        assert faulted_runner.result.txn_degraded == marked

    def test_retries_bounded_by_budget_under_faults(self, faulted_runner):
        limit = faulted_runner.spec.txn_retry_limit
        assert (
            faulted_runner.result.txn_validation_retries
            <= faulted_runner.result.txns * limit
        )


@pytest.fixture(scope="module")
def outage_rig():
    """A finished serializable run whose origin goes dark *after* the
    trace — so driven transactions hit a full outage deterministically."""
    catalog, users, trace = txn_workload(seed=SEED + 7)
    spec = ScenarioSpec(
        scenario=Scenario.SPEED_KIT,
        delta=120.0,
        page_ttl=3600.0,
        seed=SEED + 7,
        consistency="serializable",
        outage=(trace.duration + 30.0, trace.duration + 10_000.0),
    )
    runner = SimulationRunner(spec, catalog, users, trace)
    runner.run()
    event = next(
        e for e in trace.events if isinstance(e, TxnRead)
    )
    user = runner.users.by_id(event.user_id)
    coordinator = runner._txn_coordinator_for(user)
    urls = [
        URL.parse(f"/api/products/{product_id}")
        for product_id in event.product_ids
    ]

    warm = drive(
        runner,
        lambda: coordinator.execute(urls, ConsistencyLevel.SERIALIZABLE),
    )

    def step_into_outage():
        yield runner.env.timeout(60.0)

    drive(runner, step_into_outage)
    dark = drive(
        runner,
        lambda: coordinator.execute(urls, ConsistencyLevel.SERIALIZABLE),
    )
    return warm, dark


class TestDrivenOutage:
    def test_warm_txn_is_fully_serializable(self, outage_rig):
        warm, _ = outage_rig
        assert warm.achieved is ConsistencyLevel.SERIALIZABLE
        assert not warm.degraded
        assert warm.validated_at is not None

    def test_dark_txn_degrades_below_serializable(self, outage_rig):
        _, dark = outage_rig
        assert dark.achieved < ConsistencyLevel.SERIALIZABLE
        assert dark.degraded
        assert not dark.silently_downgraded

    def test_degraded_responses_carry_the_mark(self, outage_rig):
        """The contract: a served response below the requested floor
        names the level actually achieved."""
        _, dark = outage_rig
        marked = [
            read.response.headers.get(DEGRADED_HEADER)
            for read in dark.reads
        ]
        assert marked and all(
            value == dark.achieved.value for value in marked
        )

    def test_dark_txn_still_served_from_bounded_stale_caches(
        self, outage_rig
    ):
        """Degradation is graceful: the cached reads still answer."""
        _, dark = outage_rig
        ok = [
            read
            for read in dark.reads
            if read.response.status == Status.OK
        ]
        assert ok, "outage txn returned no cached reads at all"

    def test_warm_responses_are_unmarked(self, outage_rig):
        warm, _ = outage_rig
        assert all(
            DEGRADED_HEADER not in read.response.headers
            for read in warm.reads
        )
